//! A host: a simulator node holding transport endpoints.
//!
//! Each host has one egress link (toward its router or path). Sender
//! endpoints are created by the experiment harness via [`Host::start_flow`];
//! receiver endpoints are created automatically when a SYN arrives.
//! Completed-flow records accumulate on the host and, optionally, on a
//! shared completion bus the harness drains while stepping the simulator
//! (the web-workload driver reacts to completions in virtual time).

use crate::fasthash::FastMap;
use crate::receiver::ReceiverConn;
use crate::sender::{AbortReason, FlowOutcome, FlowRecord, SenderConn, TimerKind};
use crate::strategy::Strategy;
use crate::trace::{DeliveryTimelines, FlightRecorder, FlowEvent};
use crate::wire::Header;
use netsim::engine::EngineCore;
use netsim::node::{Node, TimerId};
use netsim::snap::{SnapError, SnapReader, SnapWriter};
use netsim::{Ctx, FlowId, LinkId, NodeId, Packet, SimTime};
use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// A queue of completed-flow records shared between hosts and the harness.
pub type CompletionBus = Rc<RefCell<VecDeque<FlowRecord>>>;

/// Create an empty completion bus.
pub fn completion_bus() -> CompletionBus {
    Rc::new(RefCell::new(VecDeque::new()))
}

/// Host bookkeeping shared with sender endpoints during dispatch: timer
/// token routing and completion collection.
pub struct HostCore {
    /// This host's node id.
    pub node: NodeId,
    /// This host's egress link.
    pub egress: LinkId,
    next_token: u64,
    routes: FastMap<u64, (FlowId, TimerKind)>,
    /// Records of flows that completed with this host as sender. Only
    /// populated while `retain_records` is set; open-loop service runs
    /// turn retention off and consume records from the bus instead, so
    /// memory stays bounded over millions of flows.
    pub completed: Vec<FlowRecord>,
    /// Whether `completed` accumulates records (default true). See
    /// [`Host::set_retain_records`].
    pub retain_records: bool,
    /// Debug census: timer arms by kind [Rto, Pace, Pto, User].
    pub timer_arms: [u64; 4],
    /// Debug census: timer cancels routed through endpoints.
    pub timer_cancels: u64,
    /// Optional shared completion queue drained by the harness.
    pub bus: Option<CompletionBus>,
    /// Optional flight recorder capturing transport-level trace events for
    /// every flow endpoint on this host. `None` (the default) keeps every
    /// emission site a branch on a cold `Option` — zero-cost tracing.
    pub recorder: Option<FlightRecorder>,
}

impl HostCore {
    /// Record a transport event if a flight recorder is installed.
    #[inline]
    pub(crate) fn record(&mut self, at: SimTime, flow: FlowId, event: FlowEvent) {
        if let Some(rec) = &mut self.recorder {
            rec.record(at, flow, event);
        }
    }

    pub(crate) fn alloc_token(&mut self, flow: FlowId, kind: TimerKind) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        self.timer_arms[match kind {
            TimerKind::Rto => 0,
            TimerKind::Pace => 1,
            TimerKind::Pto => 2,
            TimerKind::User(_) => 3,
        }] += 1;
        self.routes.insert(t, (flow, kind));
        t
    }

    pub(crate) fn drop_token(&mut self, token: u64) {
        self.timer_cancels += 1;
        self.routes.remove(&token);
    }

    pub(crate) fn route(&mut self, token: u64) -> Option<(FlowId, TimerKind)> {
        self.routes.remove(&token)
    }

    pub(crate) fn flow_done(&mut self, record: FlowRecord) {
        if let Some(bus) = &self.bus {
            bus.borrow_mut().push_back(record.clone());
        }
        if self.retain_records {
            self.completed.push(record);
        }
    }
}

/// A simulator node hosting transport senders and receivers.
pub struct Host {
    core: HostCore,
    senders: FastMap<FlowId, SenderConn>,
    receivers: FastMap<FlowId, ReceiverConn>,
    /// When set, receiver endpoints record delivered bytes into per-flow
    /// timelines (the Fig. 15 throughput traces). The final partial bin is
    /// closed at the flow-completion instant.
    pub timelines: Option<DeliveryTimelines>,
    /// Override the RFC 6298 1 s minimum RTO for flows started on this host
    /// (sensitivity studies; `None` = standard).
    pub min_rto: Option<netsim::SimDuration>,
    /// When true, receiver endpoints keep a per-packet arrival log (the
    /// Fig. 3 timeline view). Off by default — it stores every arrival.
    pub log_arrivals: bool,
    /// Data packets that arrived for unknown flows (should stay zero).
    pub stray_packets: u64,
    /// When true, every ACK and data delivery is checked against the
    /// transport invariants (cumulative-ACK monotonicity, no ghost bytes)
    /// and violations accumulate in `invariant_breaches`. Off by default so
    /// the packet hot path pays only a cold branch.
    pub check_invariants: bool,
    invariant_breaches: Vec<String>,
}

/// Cap on recorded breach messages per host: one is enough to fail a case,
/// a handful aids debugging, unbounded growth could swamp a broken run.
const MAX_BREACHES: usize = 16;

impl Host {
    /// Create a host. `node` and `egress` may be placeholders fixed later
    /// with [`Host::wire`] once the topology assigns ids.
    pub fn new() -> Self {
        Host {
            core: HostCore {
                node: NodeId(u32::MAX),
                egress: LinkId(u32::MAX),
                next_token: 0,
                routes: FastMap::default(),
                completed: Vec::new(),
                retain_records: true,
                timer_arms: [0; 4],
                timer_cancels: 0,
                bus: None,
                recorder: None,
            },
            senders: FastMap::default(),
            receivers: FastMap::default(),
            timelines: None,
            min_rto: None,
            log_arrivals: false,
            stray_packets: 0,
            check_invariants: false,
            invariant_breaches: Vec::new(),
        }
    }

    /// Transport-invariant violations observed so far (empty unless
    /// `check_invariants` is set and something is genuinely broken).
    pub fn invariant_breaches(&self) -> &[String] {
        &self.invariant_breaches
    }

    fn breach(&mut self, msg: String) {
        if self.invariant_breaches.len() < MAX_BREACHES {
            self.invariant_breaches.push(msg);
        }
    }

    /// Assign the node id and egress link (after topology construction).
    pub fn wire(&mut self, node: NodeId, egress: LinkId) {
        self.core.node = node;
        self.core.egress = egress;
    }

    /// Attach a completion bus.
    pub fn set_bus(&mut self, bus: CompletionBus) {
        self.core.bus = Some(bus);
    }

    /// Control whether completed-flow records accumulate on the host
    /// (default true). Open-loop service runs set this false and read
    /// completions from the bus only, keeping host memory bounded no
    /// matter how many flows pass through.
    pub fn set_retain_records(&mut self, retain: bool) {
        self.core.retain_records = retain;
    }

    /// Drop receiver endpoints whose flow completed before `before`,
    /// returning how many were reaped. Receivers are created on SYN arrival
    /// and otherwise live forever; long service runs must reap them
    /// periodically or memory grows with total flow count. `before` should
    /// trail virtual now by comfortably more than the sender's worst-case
    /// give-up time (~63 s of SYN/RTO backoff), so a late retransmit never
    /// finds its receiver missing.
    pub fn reap_receivers(&mut self, before: SimTime) -> usize {
        let n = self.receivers.len();
        self.receivers
            .retain(|_, c| c.complete_at.is_none_or(|t| t >= before));
        n - self.receivers.len()
    }

    /// Install a flight recorder holding at most `cap` events.
    pub fn enable_recorder(&mut self, cap: usize) {
        self.core.recorder = Some(FlightRecorder::new(cap));
    }

    /// The installed flight recorder, if any.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.core.recorder.as_ref()
    }

    /// Records of flows completed with this host as the sender.
    pub fn completed(&self) -> &[FlowRecord] {
        &self.core.completed
    }

    /// Debug: (timer arms by kind [Rto, Pace, Pto, User], cancels) and the
    /// number of timer-route entries still alive.
    pub fn timer_census(&self) -> ([u64; 4], u64, usize) {
        (
            self.core.timer_arms,
            self.core.timer_cancels,
            self.core.routes.len(),
        )
    }

    /// Receiver-side connection state for a flow, if any.
    pub fn receiver(&self, flow: FlowId) -> Option<&ReceiverConn> {
        self.receivers.get(&flow)
    }

    /// All receiver connections.
    pub fn receivers(&self) -> impl Iterator<Item = &ReceiverConn> {
        self.receivers.values()
    }

    /// Sender connection for a flow still in progress, if any.
    pub fn sender(&self, flow: FlowId) -> Option<&SenderConn> {
        self.senders.get(&flow)
    }

    /// All in-progress sender connections.
    pub fn senders(&self) -> impl Iterator<Item = &SenderConn> {
        self.senders.values()
    }

    /// Number of in-progress sender flows.
    pub fn active_senders(&self) -> usize {
        self.senders.len()
    }

    /// Start a flow from this host to `dst`. Call via
    /// `Simulator::with_node_mut` so the engine core is available.
    pub fn start_flow(
        &mut self,
        core: &mut EngineCore<Header>,
        flow: FlowId,
        dst: NodeId,
        bytes: u64,
        strategy: Box<dyn Strategy>,
    ) {
        assert!(
            self.core.node != NodeId(u32::MAX),
            "host must be wired to the topology before starting flows"
        );
        assert!(
            !self.senders.contains_key(&flow),
            "duplicate flow id {flow}"
        );
        let mut conn =
            SenderConn::new(flow, self.core.node, dst, self.core.egress, bytes, strategy);
        if let Some(floor) = self.min_rto {
            conn.set_min_rto(floor);
        }
        conn.start(&mut self.core, core);
        self.senders.insert(flow, conn);
    }

    fn dispatch_sender<F>(&mut self, flow: FlowId, ctx: &mut Ctx<'_, Header>, f: F)
    where
        F: FnOnce(&mut SenderConn, &mut HostCore, &mut Ctx<'_, Header>),
    {
        if let Some(mut conn) = self.senders.remove(&flow) {
            f(&mut conn, &mut self.core, ctx);
            if !conn.is_done() {
                self.senders.insert(flow, conn);
            }
        }
    }
}

impl Default for Host {
    fn default() -> Self {
        Self::new()
    }
}

/// Section magic guarding a serialized host in a checkpoint stream.
const SEC_HOST: u32 = 0x4842_0003;

/// Intern a deserialized protocol name. [`FlowRecord::protocol`] is a
/// `&'static str` in the live system (strategy names are literals); a
/// checkpoint brings them back as owned strings, which we leak at most
/// once per distinct name — bounded by the number of schemes, not flows.
fn intern_name(s: String) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut cache = CACHE.get_or_init(|| Mutex::new(Vec::new())).lock().unwrap();
    if let Some(&n) = cache.iter().find(|&&n| n == s) {
        return n;
    }
    let n: &'static str = Box::leak(s.into_boxed_str());
    cache.push(n);
    n
}

fn write_record(w: &mut SnapWriter, rec: &FlowRecord) {
    w.u64(rec.flow.0);
    w.str(rec.protocol);
    w.u64(rec.bytes);
    w.u64(rec.start.as_nanos());
    w.u64(rec.established_at.as_nanos());
    w.u64(rec.done_at.as_nanos());
    w.u64(rec.fct.as_nanos());
    rec.counters.save(w);
    w.bool(rec.min_rtt.is_some());
    w.u64(rec.min_rtt.map_or(0, |d| d.as_nanos()));
    w.u8(match rec.outcome {
        FlowOutcome::Completed => 0,
        FlowOutcome::Aborted(AbortReason::MaxRetransmits) => 1,
        FlowOutcome::Aborted(AbortReason::SynTimeout) => 2,
    });
}

fn read_record(r: &mut SnapReader<'_>) -> Result<FlowRecord, SnapError> {
    let flow = FlowId(r.u64()?);
    let protocol = intern_name(r.str()?);
    let bytes = r.u64()?;
    let start = SimTime::from_nanos(r.u64()?);
    let established_at = SimTime::from_nanos(r.u64()?);
    let done_at = SimTime::from_nanos(r.u64()?);
    let fct = netsim::SimDuration::from_nanos(r.u64()?);
    let counters = crate::sender::Counters::load(r)?;
    let has_min = r.bool()?;
    let min_ns = r.u64()?;
    let outcome = match r.u8()? {
        0 => FlowOutcome::Completed,
        1 => FlowOutcome::Aborted(AbortReason::MaxRetransmits),
        2 => FlowOutcome::Aborted(AbortReason::SynTimeout),
        tag => {
            return Err(SnapError::Tag {
                ty: "FlowOutcome",
                tag,
            })
        }
    };
    Ok(FlowRecord {
        flow,
        protocol,
        bytes,
        start,
        established_at,
        done_at,
        fct,
        counters,
        min_rtt: has_min.then(|| netsim::SimDuration::from_nanos(min_ns)),
        outcome,
    })
}

impl Host {
    /// Serialize every dynamic field of this host — live sender and
    /// receiver endpoints, timer-token routing, retained completion
    /// records, debug counters — into the checkpoint codec.
    ///
    /// Configuration knobs (`min_rto`, `log_arrivals`, `check_invariants`,
    /// record retention, the bus, timelines, the flight recorder) are NOT
    /// serialized: a restored host is rebuilt from the run configuration
    /// first, exactly like link structure on the engine side, and only the
    /// dynamic state is overlaid. Flight-recorder and timeline contents are
    /// diagnostics and do not survive a checkpoint.
    pub fn save(&self, w: &mut SnapWriter) {
        w.u32(SEC_HOST);
        w.u32(self.core.node.0);
        w.u32(self.core.egress.0);
        w.u64(self.core.next_token);
        let mut tokens: Vec<u64> = self.core.routes.keys().copied().collect();
        tokens.sort_unstable();
        w.usize(tokens.len());
        for t in tokens {
            let (flow, kind) = self.core.routes[&t];
            w.u64(t);
            w.u64(flow.0);
            let (tag, user) = match kind {
                TimerKind::Rto => (0u8, 0u64),
                TimerKind::Pace => (1, 0),
                TimerKind::Pto => (2, 0),
                TimerKind::User(u) => (3, u),
            };
            w.u8(tag);
            w.u64(user);
        }
        for arms in self.core.timer_arms {
            w.u64(arms);
        }
        w.u64(self.core.timer_cancels);
        w.usize(self.core.completed.len());
        for rec in &self.core.completed {
            write_record(w, rec);
        }
        w.u64(self.stray_packets);
        w.usize(self.invariant_breaches.len());
        for b in &self.invariant_breaches {
            w.str(b);
        }
        let mut flows: Vec<FlowId> = self.senders.keys().copied().collect();
        flows.sort_unstable_by_key(|f| f.0);
        w.usize(flows.len());
        for f in flows {
            w.u64(f.0);
            self.senders[&f].save(w);
        }
        let mut flows: Vec<FlowId> = self.receivers.keys().copied().collect();
        flows.sort_unstable_by_key(|f| f.0);
        w.usize(flows.len());
        for f in flows {
            w.u64(f.0);
            self.receivers[&f].save(w);
        }
    }

    /// Restore state written by [`Host::save`] into this host, which must
    /// be freshly built and already wired to the same topology position
    /// (same node and egress ids). `make_strategy` constructs a strategy
    /// for each in-flight sender flow — it must produce the same scheme
    /// (validated by name) configured identically to the saved run, or the
    /// resumed run will diverge.
    pub fn load(
        &mut self,
        r: &mut SnapReader<'_>,
        make_strategy: &mut dyn FnMut(FlowId) -> Box<dyn Strategy>,
    ) -> Result<(), SnapError> {
        if self.core.next_token != 0 || !self.senders.is_empty() || !self.receivers.is_empty() {
            return Err(SnapError::Unsupported(
                "restore target host must be freshly built (no flows started)".into(),
            ));
        }
        r.expect_magic(SEC_HOST)?;
        let node = NodeId(r.u32()?);
        let egress = LinkId(r.u32()?);
        if node != self.core.node || egress != self.core.egress {
            return Err(SnapError::Unsupported(format!(
                "host was saved at node {:?} egress {:?}, restore target is wired to \
                 node {:?} egress {:?} (config drift?)",
                node, egress, self.core.node, self.core.egress
            )));
        }
        self.core.next_token = r.u64()?;
        let n_routes = r.usize()?;
        for _ in 0..n_routes {
            let token = r.u64()?;
            let flow = FlowId(r.u64()?);
            let kind = match r.u8()? {
                0 => {
                    let _ = r.u64()?;
                    TimerKind::Rto
                }
                1 => {
                    let _ = r.u64()?;
                    TimerKind::Pace
                }
                2 => {
                    let _ = r.u64()?;
                    TimerKind::Pto
                }
                3 => TimerKind::User(r.u64()?),
                tag => {
                    return Err(SnapError::Tag {
                        ty: "TimerKind",
                        tag,
                    })
                }
            };
            self.core.routes.insert(token, (flow, kind));
        }
        for slot in &mut self.core.timer_arms {
            *slot = r.u64()?;
        }
        self.core.timer_cancels = r.u64()?;
        let n_done = r.usize()?;
        self.core.completed.reserve(n_done);
        for _ in 0..n_done {
            self.core.completed.push(read_record(r)?);
        }
        self.stray_packets = r.u64()?;
        let n_breach = r.usize()?;
        for _ in 0..n_breach {
            let msg = r.str()?;
            self.invariant_breaches.push(msg);
        }
        let n_senders = r.usize()?;
        for _ in 0..n_senders {
            let flow = FlowId(r.u64()?);
            let conn = SenderConn::load(r, make_strategy(flow))?;
            self.senders.insert(flow, conn);
        }
        let n_receivers = r.usize()?;
        for _ in 0..n_receivers {
            let flow = FlowId(r.u64()?);
            let conn = ReceiverConn::load(r)?;
            self.receivers.insert(flow, conn);
        }
        Ok(())
    }
}

impl Node<Header> for Host {
    fn on_packet(&mut self, pkt: Packet<Header>, ctx: &mut Ctx<'_, Header>) {
        let flow = pkt.flow;
        match pkt.payload {
            Header::Syn { flow_bytes } => {
                let log_arrivals = self.log_arrivals;
                let conn = self.receivers.entry(flow).or_insert_with(|| {
                    let mut c =
                        ReceiverConn::new(flow, self.core.node, pkt.src, flow_bytes, ctx.now());
                    if log_arrivals {
                        c.arrivals = Some(Vec::new());
                    }
                    c
                });
                let reply = conn.syn_ack();
                ctx.send(self.core.egress, reply);
            }
            Header::SynAck { window } => {
                self.dispatch_sender(flow, ctx, |c, sh, ctx| c.handle_syn_ack(sh, ctx, window));
            }
            Header::Data(ref hdr) => match self.receivers.get_mut(&flow) {
                Some(conn) => {
                    let before = conn.delivered_bytes;
                    let reply = conn.on_data(hdr, pkt.sent_at, ctx.now());
                    let delivered = conn.delivered_bytes - before;
                    if delivered > 0 {
                        if let Some(tl) = &mut self.timelines {
                            tl.record(flow, ctx.now().as_nanos(), delivered as f64);
                            if conn.complete_at.is_some() {
                                tl.close(flow, ctx.now().as_nanos());
                            }
                        }
                    }
                    self.core.record(
                        ctx.now(),
                        flow,
                        FlowEvent::Delivered {
                            seg: hdr.seg,
                            cum: conn.cum(),
                            delivered_bytes: conn.delivered_bytes,
                        },
                    );
                    ctx.send(self.core.egress, reply);
                    if self.check_invariants {
                        let msg = (conn.delivered_bytes > conn.total_bytes()).then(|| {
                            format!(
                                "flow {flow}: receiver delivered {} bytes of a {}-byte flow \
                                 (ghost bytes)",
                                conn.delivered_bytes,
                                conn.total_bytes()
                            )
                        });
                        if let Some(m) = msg {
                            self.breach(m);
                        }
                    }
                }
                None => {
                    self.stray_packets += 1;
                }
            },
            Header::Ack(ref ack) => {
                let before = if self.check_invariants {
                    self.senders
                        .get(&flow)
                        .map(|c| (c.cum_ack(), c.total_segs()))
                } else {
                    None
                };
                self.dispatch_sender(flow, ctx, |c, sh, ctx| c.handle_ack(sh, ctx, ack));
                if let Some((before, total_segs)) = before {
                    // A finished flow is removed from the map; its final
                    // cumulative ACK equals the flow length by construction.
                    if let Some(after) = self.senders.get(&flow).map(|c| c.cum_ack()) {
                        if after < before {
                            self.breach(format!(
                                "flow {flow}: cumulative ACK moved backwards ({before} -> {after})"
                            ));
                        }
                        if after > total_segs {
                            self.breach(format!(
                                "flow {flow}: cumulative ACK {after} beyond flow end {total_segs}"
                            ));
                        }
                    }
                }
            }
            Header::Probe(ref ph) => match self.receivers.get_mut(&flow) {
                Some(conn) => {
                    let reply = conn.on_probe(ph, pkt.sent_at, ctx.now());
                    ctx.send(self.core.egress, reply);
                }
                None => {
                    self.stray_packets += 1;
                }
            },
            Header::ProbeAck(ref pa) => {
                self.dispatch_sender(flow, ctx, |c, sh, ctx| c.handle_probe_ack(sh, ctx, pa));
            }
        }
    }

    fn on_timer(&mut self, _id: TimerId, token: u64, ctx: &mut Ctx<'_, Header>) {
        if let Some((flow, kind)) = self.core.route(token) {
            self.dispatch_sender(flow, ctx, |c, sh, ctx| c.handle_timer(sh, ctx, kind));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

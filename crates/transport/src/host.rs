//! A host: a simulator node holding transport endpoints.
//!
//! Each host has one egress link (toward its router or path). Sender
//! endpoints are created by the experiment harness via [`Host::start_flow`];
//! receiver endpoints are created automatically when a SYN arrives.
//! Completed-flow records accumulate on the host and, optionally, on a
//! shared completion bus the harness drains while stepping the simulator
//! (the web-workload driver reacts to completions in virtual time).

use crate::fasthash::FastMap;
use crate::receiver::ReceiverConn;
use crate::sender::{FlowRecord, SenderConn, TimerKind};
use crate::strategy::Strategy;
use crate::trace::{DeliveryTimelines, FlightRecorder, FlowEvent};
use crate::wire::Header;
use netsim::engine::EngineCore;
use netsim::node::{Node, TimerId};
use netsim::{Ctx, FlowId, LinkId, NodeId, Packet, SimTime};
use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// A queue of completed-flow records shared between hosts and the harness.
pub type CompletionBus = Rc<RefCell<VecDeque<FlowRecord>>>;

/// Create an empty completion bus.
pub fn completion_bus() -> CompletionBus {
    Rc::new(RefCell::new(VecDeque::new()))
}

/// Host bookkeeping shared with sender endpoints during dispatch: timer
/// token routing and completion collection.
pub struct HostCore {
    /// This host's node id.
    pub node: NodeId,
    /// This host's egress link.
    pub egress: LinkId,
    next_token: u64,
    routes: FastMap<u64, (FlowId, TimerKind)>,
    /// Records of flows that completed with this host as sender.
    pub completed: Vec<FlowRecord>,
    /// Debug census: timer arms by kind [Rto, Pace, Pto, User].
    pub timer_arms: [u64; 4],
    /// Debug census: timer cancels routed through endpoints.
    pub timer_cancels: u64,
    /// Optional shared completion queue drained by the harness.
    pub bus: Option<CompletionBus>,
    /// Optional flight recorder capturing transport-level trace events for
    /// every flow endpoint on this host. `None` (the default) keeps every
    /// emission site a branch on a cold `Option` — zero-cost tracing.
    pub recorder: Option<FlightRecorder>,
}

impl HostCore {
    /// Record a transport event if a flight recorder is installed.
    #[inline]
    pub(crate) fn record(&mut self, at: SimTime, flow: FlowId, event: FlowEvent) {
        if let Some(rec) = &mut self.recorder {
            rec.record(at, flow, event);
        }
    }

    pub(crate) fn alloc_token(&mut self, flow: FlowId, kind: TimerKind) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        self.timer_arms[match kind {
            TimerKind::Rto => 0,
            TimerKind::Pace => 1,
            TimerKind::Pto => 2,
            TimerKind::User(_) => 3,
        }] += 1;
        self.routes.insert(t, (flow, kind));
        t
    }

    pub(crate) fn drop_token(&mut self, token: u64) {
        self.timer_cancels += 1;
        self.routes.remove(&token);
    }

    pub(crate) fn route(&mut self, token: u64) -> Option<(FlowId, TimerKind)> {
        self.routes.remove(&token)
    }

    pub(crate) fn flow_done(&mut self, record: FlowRecord) {
        if let Some(bus) = &self.bus {
            bus.borrow_mut().push_back(record.clone());
        }
        self.completed.push(record);
    }
}

/// A simulator node hosting transport senders and receivers.
pub struct Host {
    core: HostCore,
    senders: FastMap<FlowId, SenderConn>,
    receivers: FastMap<FlowId, ReceiverConn>,
    /// When set, receiver endpoints record delivered bytes into per-flow
    /// timelines (the Fig. 15 throughput traces). The final partial bin is
    /// closed at the flow-completion instant.
    pub timelines: Option<DeliveryTimelines>,
    /// Override the RFC 6298 1 s minimum RTO for flows started on this host
    /// (sensitivity studies; `None` = standard).
    pub min_rto: Option<netsim::SimDuration>,
    /// When true, receiver endpoints keep a per-packet arrival log (the
    /// Fig. 3 timeline view). Off by default — it stores every arrival.
    pub log_arrivals: bool,
    /// Data packets that arrived for unknown flows (should stay zero).
    pub stray_packets: u64,
    /// When true, every ACK and data delivery is checked against the
    /// transport invariants (cumulative-ACK monotonicity, no ghost bytes)
    /// and violations accumulate in `invariant_breaches`. Off by default so
    /// the packet hot path pays only a cold branch.
    pub check_invariants: bool,
    invariant_breaches: Vec<String>,
}

/// Cap on recorded breach messages per host: one is enough to fail a case,
/// a handful aids debugging, unbounded growth could swamp a broken run.
const MAX_BREACHES: usize = 16;

impl Host {
    /// Create a host. `node` and `egress` may be placeholders fixed later
    /// with [`Host::wire`] once the topology assigns ids.
    pub fn new() -> Self {
        Host {
            core: HostCore {
                node: NodeId(u32::MAX),
                egress: LinkId(u32::MAX),
                next_token: 0,
                routes: FastMap::default(),
                completed: Vec::new(),
                timer_arms: [0; 4],
                timer_cancels: 0,
                bus: None,
                recorder: None,
            },
            senders: FastMap::default(),
            receivers: FastMap::default(),
            timelines: None,
            min_rto: None,
            log_arrivals: false,
            stray_packets: 0,
            check_invariants: false,
            invariant_breaches: Vec::new(),
        }
    }

    /// Transport-invariant violations observed so far (empty unless
    /// `check_invariants` is set and something is genuinely broken).
    pub fn invariant_breaches(&self) -> &[String] {
        &self.invariant_breaches
    }

    fn breach(&mut self, msg: String) {
        if self.invariant_breaches.len() < MAX_BREACHES {
            self.invariant_breaches.push(msg);
        }
    }

    /// Assign the node id and egress link (after topology construction).
    pub fn wire(&mut self, node: NodeId, egress: LinkId) {
        self.core.node = node;
        self.core.egress = egress;
    }

    /// Attach a completion bus.
    pub fn set_bus(&mut self, bus: CompletionBus) {
        self.core.bus = Some(bus);
    }

    /// Install a flight recorder holding at most `cap` events.
    pub fn enable_recorder(&mut self, cap: usize) {
        self.core.recorder = Some(FlightRecorder::new(cap));
    }

    /// The installed flight recorder, if any.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.core.recorder.as_ref()
    }

    /// Records of flows completed with this host as the sender.
    pub fn completed(&self) -> &[FlowRecord] {
        &self.core.completed
    }

    /// Debug: (timer arms by kind [Rto, Pace, Pto, User], cancels) and the
    /// number of timer-route entries still alive.
    pub fn timer_census(&self) -> ([u64; 4], u64, usize) {
        (
            self.core.timer_arms,
            self.core.timer_cancels,
            self.core.routes.len(),
        )
    }

    /// Receiver-side connection state for a flow, if any.
    pub fn receiver(&self, flow: FlowId) -> Option<&ReceiverConn> {
        self.receivers.get(&flow)
    }

    /// All receiver connections.
    pub fn receivers(&self) -> impl Iterator<Item = &ReceiverConn> {
        self.receivers.values()
    }

    /// Sender connection for a flow still in progress, if any.
    pub fn sender(&self, flow: FlowId) -> Option<&SenderConn> {
        self.senders.get(&flow)
    }

    /// All in-progress sender connections.
    pub fn senders(&self) -> impl Iterator<Item = &SenderConn> {
        self.senders.values()
    }

    /// Number of in-progress sender flows.
    pub fn active_senders(&self) -> usize {
        self.senders.len()
    }

    /// Start a flow from this host to `dst`. Call via
    /// `Simulator::with_node_mut` so the engine core is available.
    pub fn start_flow(
        &mut self,
        core: &mut EngineCore<Header>,
        flow: FlowId,
        dst: NodeId,
        bytes: u64,
        strategy: Box<dyn Strategy>,
    ) {
        assert!(
            self.core.node != NodeId(u32::MAX),
            "host must be wired to the topology before starting flows"
        );
        assert!(
            !self.senders.contains_key(&flow),
            "duplicate flow id {flow}"
        );
        let mut conn =
            SenderConn::new(flow, self.core.node, dst, self.core.egress, bytes, strategy);
        if let Some(floor) = self.min_rto {
            conn.set_min_rto(floor);
        }
        conn.start(&mut self.core, core);
        self.senders.insert(flow, conn);
    }

    fn dispatch_sender<F>(&mut self, flow: FlowId, ctx: &mut Ctx<'_, Header>, f: F)
    where
        F: FnOnce(&mut SenderConn, &mut HostCore, &mut Ctx<'_, Header>),
    {
        if let Some(mut conn) = self.senders.remove(&flow) {
            f(&mut conn, &mut self.core, ctx);
            if !conn.is_done() {
                self.senders.insert(flow, conn);
            }
        }
    }
}

impl Default for Host {
    fn default() -> Self {
        Self::new()
    }
}

impl Node<Header> for Host {
    fn on_packet(&mut self, pkt: Packet<Header>, ctx: &mut Ctx<'_, Header>) {
        let flow = pkt.flow;
        match pkt.payload {
            Header::Syn { flow_bytes } => {
                let log_arrivals = self.log_arrivals;
                let conn = self.receivers.entry(flow).or_insert_with(|| {
                    let mut c =
                        ReceiverConn::new(flow, self.core.node, pkt.src, flow_bytes, ctx.now());
                    if log_arrivals {
                        c.arrivals = Some(Vec::new());
                    }
                    c
                });
                let reply = conn.syn_ack();
                ctx.send(self.core.egress, reply);
            }
            Header::SynAck { window } => {
                self.dispatch_sender(flow, ctx, |c, sh, ctx| c.handle_syn_ack(sh, ctx, window));
            }
            Header::Data(ref hdr) => match self.receivers.get_mut(&flow) {
                Some(conn) => {
                    let before = conn.delivered_bytes;
                    let reply = conn.on_data(hdr, pkt.sent_at, ctx.now());
                    let delivered = conn.delivered_bytes - before;
                    if delivered > 0 {
                        if let Some(tl) = &mut self.timelines {
                            tl.record(flow, ctx.now().as_nanos(), delivered as f64);
                            if conn.complete_at.is_some() {
                                tl.close(flow, ctx.now().as_nanos());
                            }
                        }
                    }
                    self.core.record(
                        ctx.now(),
                        flow,
                        FlowEvent::Delivered {
                            seg: hdr.seg,
                            cum: conn.cum(),
                            delivered_bytes: conn.delivered_bytes,
                        },
                    );
                    ctx.send(self.core.egress, reply);
                    if self.check_invariants {
                        let msg = (conn.delivered_bytes > conn.total_bytes()).then(|| {
                            format!(
                                "flow {flow}: receiver delivered {} bytes of a {}-byte flow \
                                 (ghost bytes)",
                                conn.delivered_bytes,
                                conn.total_bytes()
                            )
                        });
                        if let Some(m) = msg {
                            self.breach(m);
                        }
                    }
                }
                None => {
                    self.stray_packets += 1;
                }
            },
            Header::Ack(ref ack) => {
                let before = if self.check_invariants {
                    self.senders
                        .get(&flow)
                        .map(|c| (c.cum_ack(), c.total_segs()))
                } else {
                    None
                };
                self.dispatch_sender(flow, ctx, |c, sh, ctx| c.handle_ack(sh, ctx, ack));
                if let Some((before, total_segs)) = before {
                    // A finished flow is removed from the map; its final
                    // cumulative ACK equals the flow length by construction.
                    if let Some(after) = self.senders.get(&flow).map(|c| c.cum_ack()) {
                        if after < before {
                            self.breach(format!(
                                "flow {flow}: cumulative ACK moved backwards ({before} -> {after})"
                            ));
                        }
                        if after > total_segs {
                            self.breach(format!(
                                "flow {flow}: cumulative ACK {after} beyond flow end {total_segs}"
                            ));
                        }
                    }
                }
            }
            Header::Probe(ref ph) => match self.receivers.get_mut(&flow) {
                Some(conn) => {
                    let reply = conn.on_probe(ph, pkt.sent_at, ctx.now());
                    ctx.send(self.core.egress, reply);
                }
                None => {
                    self.stray_packets += 1;
                }
            },
            Header::ProbeAck(ref pa) => {
                self.dispatch_sender(flow, ctx, |c, sh, ctx| c.handle_probe_ack(sh, ctx, pa));
            }
        }
    }

    fn on_timer(&mut self, _id: TimerId, token: u64, ctx: &mut Ctx<'_, Header>) {
        if let Some((flow, kind)) = self.core.route(token) {
            self.dispatch_sender(flow, ctx, |c, sh, ctx| c.handle_timer(sh, ctx, kind));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

//! The sender-side strategy interface.
//!
//! Every scheme the paper evaluates — TCP, TCP-10, TCP-Cache, Reactive,
//! Proactive, JumpStart, PCP, and Halfback with its ablations — is a
//! [`Strategy`] plugged into the shared sender chassis
//! ([`crate::sender::SenderConn`]). The chassis owns the mechanics every
//! scheme shares (handshake, scoreboard, RTT/RTO estimation, timers,
//! retransmission accounting); the strategy owns policy: what to send when.

use crate::scoreboard::AckOutcome;
use crate::sender::Ops;
use crate::wire::{AckHeader, ProbeAckHeader, SegId};

/// Strategy's answer to a pacing-timer tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaceAction {
    /// Keep the pacing timer running at the current interval.
    Continue,
    /// Stop the pacing timer.
    Stop,
}

/// Sender-side policy for one flow.
///
/// All hooks receive [`Ops`], the chassis view used to send segments, arm
/// timers and inspect the scoreboard. Hooks other than `on_established`,
/// `on_ack` and `on_rto` have no-op defaults.
pub trait Strategy {
    /// Name used in reports ("TCP", "JumpStart", "Halfback"…).
    fn name(&self) -> &'static str;

    /// Handshake finished: the chassis has an RTT sample and the advertised
    /// window; start transmitting.
    fn on_established(&mut self, ops: &mut Ops<'_, '_>);

    /// An ACK arrived (after the scoreboard was updated). Not called for
    /// the ACK that completes the flow.
    fn on_ack(&mut self, ops: &mut Ops<'_, '_>, ack: &AckHeader, outcome: &AckOutcome);

    /// Segments newly deemed lost by SACK-based detection, ascending.
    /// Called immediately before `on_ack` for the same ACK.
    fn on_loss_detected(&mut self, ops: &mut Ops<'_, '_>, newly_lost: &[SegId]) {
        let _ = (ops, newly_lost);
    }

    /// The retransmission timer fired. The chassis has already backed off
    /// the RTO and reset the scoreboard's pipe; the strategy must
    /// retransmit (typically the first uncovered segment).
    fn on_rto(&mut self, ops: &mut Ops<'_, '_>);

    /// The pacing timer fired; send the next paced packet(s) and say
    /// whether to keep ticking.
    fn on_pace_tick(&mut self, ops: &mut Ops<'_, '_>) -> PaceAction {
        let _ = ops;
        PaceAction::Stop
    }

    /// The probe timeout fired (Reactive TCP's tail-loss probe).
    fn on_pto(&mut self, ops: &mut Ops<'_, '_>) {
        let _ = ops;
    }

    /// A strategy-armed timer fired.
    fn on_user_timer(&mut self, ops: &mut Ops<'_, '_>, token: u64) {
        let _ = (ops, token);
    }

    /// A PCP probe acknowledgement arrived.
    fn on_probe_ack(&mut self, ops: &mut Ops<'_, '_>, pa: &ProbeAckHeader) {
        let _ = (ops, pa);
    }

    /// The flow just completed (final cumulative ACK arrived). Used by
    /// TCP-Cache to deposit its final congestion state.
    fn on_complete(&mut self, ops: &mut Ops<'_, '_>) {
        let _ = ops;
    }

    /// Whether this scheme's stack naively re-marks retransmitted packets
    /// as lost on later duplicate ACKs (and so may retransmit the same
    /// packet many times). False for careful RFC 6675-style stacks; true
    /// for JumpStart, whose repeated retransmission of the same packets
    /// the paper identifies as its failure mode.
    fn naive_loss_remarking(&self) -> bool {
        false
    }

    /// Serialize the strategy's dynamic state into the engine checkpoint
    /// codec. Stateless strategies keep the default no-op; anything with
    /// live policy state (windows, phases, pending work) must write it here
    /// and read it back in [`Strategy::load_state`], or resumed runs will
    /// diverge from uninterrupted ones.
    fn save_state(&self, w: &mut netsim::snap::SnapWriter) {
        let _ = w;
    }

    /// Restore state written by [`Strategy::save_state`] into a freshly
    /// constructed strategy of the same scheme.
    fn load_state(
        &mut self,
        r: &mut netsim::snap::SnapReader<'_>,
    ) -> Result<(), netsim::snap::SnapError> {
        let _ = r;
        Ok(())
    }
}

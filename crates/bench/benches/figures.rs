//! One benchmark group per table/figure of the paper.
//!
//! Each bench runs the *same code path* as `repro <id>` at a reduced scale
//! (fewer paths, shorter virtual horizons), so `cargo bench` both times the
//! harness and regenerates every result end-to-end. Reduced scale keeps the
//! full suite in minutes; the paper-scale run is `repro all --out out/`.

use bench::{run_benches, Bench};
use netsim::{Rate, SimDuration, SimTime};
use scenarios::figures::{
    bufferbloat, flowsize_sweep, friendliness, home, long_short, table1, throughput_trace,
    traffic_cdf, walkthrough, web_response,
};
use scenarios::runner::{run_single_path_flow, FlowPlan};
use scenarios::{Protocol, Scale};
use std::hint::black_box;

fn small(c: &mut Bench, name: &str, f: impl FnMut()) {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.bench_function("run", f);
    g.finish();
}

/// Fig. 1 + Fig. 12: one cell of the utilization sweep (the full quick
/// sweep is minutes; a bench iteration must stay sub-second).
fn fig01_12_tradeoff(c: &mut Bench) {
    use netsim::rng::SimRng;
    use netsim::topology::DumbbellSpec;
    use scenarios::runner::{plans_from_schedule, run_dumbbell, RunOptions};
    use workload::Schedule;
    let spec = DumbbellSpec::emulab(1);
    let horizon = SimTime::ZERO + SimDuration::from_secs(15);
    let schedule =
        Schedule::fixed_size(spec.bottleneck_rate, 100_000, 0.5, horizon, SimRng::new(42));
    small(c, "fig01_12_feasible_cell_50pct", || {
        let plans = plans_from_schedule(&schedule, Protocol::Halfback);
        black_box(run_dumbbell(&spec, &plans, &RunOptions::default()));
    });
}

/// Fig. 2: byte-weighted traffic CDFs.
fn fig02_traffic_cdf(c: &mut Bench) {
    small(c, "fig02_traffic_cdf", || {
        black_box(traffic_cdf::figures(Scale::Quick));
    });
}

/// Fig. 3: the deterministic walkthrough.
fn fig03_walkthrough(c: &mut Bench) {
    small(c, "fig03_walkthrough", || {
        black_box(walkthrough::run());
    });
}

/// Figs. 5-8: the PlanetLab-substitute population (single protocol subset
/// per iteration).
fn fig05_08_planetlab(c: &mut Bench) {
    let paths = workload::planetlab_paths(40, 17);
    small(c, "fig05_08_planetlab_40paths", || {
        for (i, spec) in paths.iter().enumerate() {
            for p in [Protocol::Halfback, Protocol::Tcp] {
                black_box(run_single_path_flow(spec, p, 100_000, 1000 + i as u64));
            }
        }
    });
}

/// Fig. 9: home networks.
fn fig09_home(c: &mut Bench) {
    small(c, "fig09_home_networks", || {
        black_box(home::figures(Scale::Quick));
    });
}

/// Fig. 10: the bufferbloat sweep (one cell per iteration).
fn fig10_bufferbloat(c: &mut Bench) {
    small(c, "fig10_bufferbloat_cell", || {
        black_box(bufferbloat::cell(Protocol::Halfback, 115_000, Scale::Quick));
        black_box(bufferbloat::cell(
            Protocol::JumpStart,
            115_000,
            Scale::Quick,
        ));
    });
}

/// Fig. 11: flow-size sweep (one trace/protocol cell).
fn fig11_flowsize(c: &mut Bench) {
    small(c, "fig11_flowsize_cell", || {
        black_box(flowsize_sweep::cell(
            workload::TraceKind::Internet,
            Protocol::Halfback,
            Scale::Quick,
        ));
    });
}

/// Fig. 13: the 10/90 short/long mix (one cell).
fn fig13_longshort(c: &mut Bench) {
    small(c, "fig13_longshort_cell", || {
        black_box(long_short::cell(Protocol::Halfback, 0.5, Scale::Quick));
    });
}

/// Fig. 14: TCP-friendliness (one scatter point).
fn fig14_friendliness(c: &mut Bench) {
    small(c, "fig14_friendliness_point", || {
        black_box(friendliness::point(Protocol::Halfback, 0.2, Scale::Quick));
    });
}

/// Fig. 15: throughput traces.
fn fig15_throughput(c: &mut Bench) {
    small(c, "fig15_throughput_panel", || {
        black_box(throughput_trace::panel(
            &[(100_000, Protocol::Halfback)],
            Scale::Quick,
        ));
    });
}

/// Fig. 16: web response (one protocol/utilization cell).
fn fig16_web(c: &mut Bench) {
    small(c, "fig16_web_cell", || {
        black_box(web_response::run_web(Protocol::Halfback, 0.3, Scale::Quick));
    });
}

/// Fig. 17: one ablation-variant cell (sweep machinery identical to
/// Fig. 12's; the variant exercises the Halfback-Forward code path).
fn fig17_ablation(c: &mut Bench) {
    use netsim::rng::SimRng;
    use netsim::topology::DumbbellSpec;
    use scenarios::runner::{plans_from_schedule, run_dumbbell, RunOptions};
    use workload::Schedule;
    let spec = DumbbellSpec::emulab(1);
    let horizon = SimTime::ZERO + SimDuration::from_secs(15);
    let schedule =
        Schedule::fixed_size(spec.bottleneck_rate, 100_000, 0.5, horizon, SimRng::new(42));
    small(c, "fig17_ablation_forward_cell_50pct", || {
        let plans = plans_from_schedule(&schedule, Protocol::HalfbackForward);
        black_box(run_dumbbell(&spec, &plans, &RunOptions::default()));
    });
}

/// Table 1: the taxonomy rendering.
fn table1_taxonomy(c: &mut Bench) {
    small(c, "table1_taxonomy", || {
        black_box(table1::figures(Scale::Quick));
    });
}

/// PlanetLab single-flow baseline: how fast is one simulated transfer?
fn headline_single_flow(c: &mut Bench) {
    let spec = netsim::topology::PathSpec::clean(Rate::from_mbps(50), SimDuration::from_millis(60));
    small(c, "single_flow_halfback_100kb", || {
        black_box(run_single_path_flow(&spec, Protocol::Halfback, 100_000, 1));
    });
    let _ = SimTime::ZERO;
    let _: Option<FlowPlan> = None;
}

fn main() {
    run_benches(&[
        ("fig01_12_tradeoff", fig01_12_tradeoff),
        ("fig02_traffic_cdf", fig02_traffic_cdf),
        ("fig03_walkthrough", fig03_walkthrough),
        ("fig05_08_planetlab", fig05_08_planetlab),
        ("fig09_home", fig09_home),
        ("fig10_bufferbloat", fig10_bufferbloat),
        ("fig11_flowsize", fig11_flowsize),
        ("fig13_longshort", fig13_longshort),
        ("fig14_friendliness", fig14_friendliness),
        ("fig15_throughput", fig15_throughput),
        ("fig16_web", fig16_web),
        ("fig17_ablation", fig17_ablation),
        ("table1_taxonomy", table1_taxonomy),
        ("headline_single_flow", headline_single_flow),
    ]);
}

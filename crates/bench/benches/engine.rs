//! Microbenchmarks of the simulation substrate itself: raw event
//! throughput, queue operations, and per-flow transport cost. These bound
//! how large a paper-scale experiment can be.

use bench::{run_benches, Bench};
use netsim::link::LinkSpec;
use netsim::packet::{FlowId, Packet};
use netsim::queue::{DropTail, QueueDiscipline};
use netsim::rng::SimRng;
use netsim::time::{Rate, SimDuration, SimTime};
use netsim::topology::{build_dumbbell, DumbbellSpec};
use netsim::{Node, Simulator, TimerId};
use std::any::Any;
use std::hint::black_box;

struct Sink;
impl Node<u32> for Sink {
    fn on_packet(&mut self, _p: Packet<u32>, _c: &mut netsim::Ctx<'_, u32>) {}
    fn on_timer(&mut self, _i: TimerId, _t: u64, _c: &mut netsim::Ctx<'_, u32>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Raw engine: push N packets through a saturated link.
fn engine_throughput(c: &mut Bench) {
    let n = 20_000u64;
    let mut g = c.benchmark_group("engine_packet_events");
    g.throughput_elements(n);
    g.sample_size(10);
    g.bench_function("saturated_link", || {
        let mut sim: Simulator<u32> = Simulator::new(1);
        let a = sim.add_node(Box::new(Sink));
        let z = sim.add_node(Box::new(Sink));
        let l = sim.add_link(LinkSpec::drop_tail(
            a,
            z,
            Rate::from_gbps(10),
            SimDuration::from_micros(10),
            1_000_000_000,
        ));
        for i in 0..n {
            sim.core()
                .send_on(l, Packet::new(FlowId(i), a, z, 1500, 0u32));
        }
        sim.run_to_completion(10 * n);
        black_box(sim.events_processed());
    });
    g.finish();
}

/// Drop-tail enqueue/dequeue cycle.
fn queue_ops(c: &mut Bench) {
    let n = 100_000u64;
    let mut g = c.benchmark_group("queue_ops");
    g.throughput_elements(n);
    g.sample_size(10);
    g.bench_function("droptail_cycle", || {
        let mut q: DropTail<u32> = DropTail::new(64 * 1500);
        let src = netsim::NodeId(0);
        let dst = netsim::NodeId(1);
        for i in 0..n {
            let _ = q.enqueue(Packet::new(FlowId(i), src, dst, 1500, 0u32), SimTime::ZERO);
            if i % 2 == 1 {
                black_box(q.dequeue(SimTime::ZERO));
            }
        }
    });
    g.finish();
}

/// Full transport stack: one 100 KB Halfback flow on the Emulab dumbbell.
fn transport_flow(c: &mut Bench) {
    let mut g = c.benchmark_group("transport_flow");
    g.sample_size(20);
    g.bench_function("halfback_100kb_dumbbell", || {
        let mut sim = transport::TransportSim::new(7);
        let net = build_dumbbell(&mut sim, &DumbbellSpec::emulab(1), |_, _| {
            Box::new(transport::Host::new())
        });
        sim.with_node_mut::<transport::Host, _>(net.left_hosts[0], |h, _| {
            h.wire(net.left_hosts[0], net.left_egress[0])
        });
        sim.with_node_mut::<transport::Host, _>(net.right_hosts[0], |h, _| {
            h.wire(net.right_hosts[0], net.right_egress[0])
        });
        sim.with_node_mut::<transport::Host, _>(net.left_hosts[0], |h, core| {
            h.start_flow(
                core,
                FlowId(1),
                net.right_hosts[0],
                100_000,
                Box::new(halfback::Halfback::new()),
            )
        });
        sim.run_to_completion(1_000_000);
        black_box(sim.events_processed());
    });
    g.finish();
}

/// Workload generation cost (path populations and schedules).
fn workload_generation(c: &mut Bench) {
    let mut g = c.benchmark_group("workload_generation");
    g.sample_size(10);
    g.bench_function("planetlab_2600_paths", || {
        black_box(workload::planetlab_paths(2600, 17));
    });
    g.bench_function("poisson_schedule_600s", || {
        black_box(workload::Schedule::fixed_size(
            Rate::from_mbps(15),
            100_000,
            0.5,
            SimTime::ZERO + SimDuration::from_secs(600),
            SimRng::new(5),
        ));
    });
    g.finish();
}

fn main() {
    run_benches(&[
        ("engine_throughput", engine_throughput),
        ("queue_ops", queue_ops),
        ("transport_flow", transport_flow),
        ("workload_generation", workload_generation),
    ]);
}

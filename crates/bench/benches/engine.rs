//! Microbenchmarks of the simulation substrate itself: raw event
//! throughput, queue operations, and per-flow transport cost. These bound
//! how large a paper-scale experiment can be.

use bench::{run_benches, Bench};
use netsim::link::LinkSpec;
use netsim::packet::{FlowId, Packet, PacketArena};
use netsim::queue::{DropTail, QueueDiscipline, Verdict};
use netsim::rng::SimRng;
use netsim::time::{Rate, SimDuration, SimTime};
use netsim::topology::{build_dumbbell, DumbbellSpec};
use netsim::{Node, Simulator, TimerId};
use std::any::Any;
use std::hint::black_box;

struct Sink;
impl Node<u32> for Sink {
    fn on_packet(&mut self, _p: Packet<u32>, _c: &mut netsim::Ctx<'_, u32>) {}
    fn on_timer(&mut self, _i: TimerId, _t: u64, _c: &mut netsim::Ctx<'_, u32>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A node that keeps one timer in flight: each firing re-arms at a
/// pseudo-random offset. With K nodes seeded this holds K pending events
/// steady — the classical "hold model" that exercises the event queue the
/// way a running simulation does (interleaved pop + push at queue depth K).
struct Hold {
    remaining: u64,
    lcg: u64,
}

impl Node<u32> for Hold {
    fn on_packet(&mut self, _p: Packet<u32>, _c: &mut netsim::Ctx<'_, u32>) {}
    fn on_timer(&mut self, _i: TimerId, _t: u64, c: &mut netsim::Ctx<'_, u32>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            self.lcg = self
                .lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Offsets up to ~1 ms straddle the calendar-queue horizon in
            // both directions (near-bucket and overflow paths).
            let delta = (self.lcg >> 33) % 1_000_000 + 1;
            c.set_timer(SimDuration::from_nanos(delta), 0);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Event-queue operation mixes: schedule/fire and schedule/cancel/fire at
/// 1e5–1e7 events, plus the steady-state hold model. These go straight at
/// the engine's timer API, so they measure queue push/pop/cancel cost with
/// no link or transport work attached.
fn event_queue(c: &mut Bench) {
    // Pre-schedule n timers at pseudo-random times within `spread_ns`, then
    // drain. `cancel_every` != 0 cancels every k-th timer before draining
    // (the cancelled slots still pass through the queue as stale entries).
    fn schedule_drain(n: u64, spread_ns: u64, cancel_every: u64) {
        let mut sim: Simulator<u32> = Simulator::new(3);
        let a = sim.add_node(Box::new(Sink));
        let mut lcg: u64 = 0x9e3779b97f4a7c15;
        let mut ids = Vec::with_capacity(if cancel_every == 0 { 0 } else { n as usize });
        for _ in 0..n {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let at = SimTime::from_nanos((lcg >> 16) % spread_ns + 1);
            let id = sim.core().set_timer_at(a, at, 0);
            if cancel_every != 0 {
                ids.push(id);
            }
        }
        for (i, id) in ids.into_iter().enumerate() {
            if (i as u64).is_multiple_of(cancel_every) {
                sim.core().cancel_timer(id);
            }
        }
        sim.run_to_completion(2 * n);
        black_box(sim.events_processed());
    }

    let mut g = c.benchmark_group("event_queue");
    g.sample_size(10);
    g.throughput_elements(100_000);
    g.bench_function("schedule_fire_1e5", || {
        schedule_drain(100_000, 100_000_000, 0);
    });
    g.throughput_elements(1_000_000);
    g.bench_function("schedule_fire_1e6", || {
        schedule_drain(1_000_000, 1_000_000_000, 0);
    });
    g.bench_function("schedule_cancel_fire_1e6", || {
        schedule_drain(1_000_000, 1_000_000_000, 2);
    });
    // 60 s spread: every event lands far beyond the L1 segment (~537 ms),
    // parks in the second-level wheel, and cascades into L1 as the cursor
    // crosses segments — the far-future path that used to live on the
    // overflow heap.
    g.bench_function("far_schedule_fire_1e6", || {
        schedule_drain(1_000_000, 60_000_000_000, 0);
    });
    g.sample_size(3);
    g.throughput_elements(10_000_000);
    g.bench_function("schedule_fire_1e7", || {
        schedule_drain(10_000_000, 10_000_000_000, 0);
    });
    g.finish();

    let mut g = c.benchmark_group("event_queue_hold");
    // 1e6 fire+re-arm cycles at a steady depth of 20k pending events.
    let depth = 20_000u64;
    let cycles = 1_000_000u64;
    g.sample_size(10);
    g.throughput_elements(cycles);
    g.bench_function("depth_20k_1e6_events", || {
        let mut sim: Simulator<u32> = Simulator::new(3);
        let node = sim.add_node(Box::new(Hold {
            remaining: cycles - depth,
            lcg: 0x2545f4914f6cdd1d,
        }));
        let mut lcg: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..depth {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let at = SimTime::from_nanos((lcg >> 33) % 1_000_000 + 1);
            sim.core().set_timer_at(node, at, 0);
        }
        sim.run_to_completion(2 * cycles);
        black_box(sim.events_processed());
    });
    g.finish();
}

/// Raw engine: push N packets through a saturated link.
fn engine_throughput(c: &mut Bench) {
    let n = 20_000u64;
    let mut g = c.benchmark_group("engine_packet_events");
    g.throughput_elements(n);
    g.sample_size(10);
    g.bench_function("saturated_link", || {
        let mut sim: Simulator<u32> = Simulator::new(1);
        let a = sim.add_node(Box::new(Sink));
        let z = sim.add_node(Box::new(Sink));
        let l = sim.add_link(LinkSpec::drop_tail(
            a,
            z,
            Rate::from_gbps(10),
            SimDuration::from_micros(10),
            1_000_000_000,
        ));
        for i in 0..n {
            sim.core()
                .send_on(l, Packet::new(FlowId(i), a, z, 1500, 0u32));
        }
        sim.run_to_completion(10 * n);
        black_box(sim.events_processed());
    });
    g.finish();
}

/// The tracing hot path: push 1e5 packets through a saturated link with the
/// trace hook disabled (the default — every emission site is one branch on
/// a cold `Option`) and, for comparison, with a counting tracer installed.
/// The disabled variant is checked against the committed baseline: tracing
/// must stay free when off.
fn link_pipeline(c: &mut Bench) {
    fn push_1e5(trace: bool) {
        let n = 100_000u64;
        let mut sim: Simulator<u32> = Simulator::new(1);
        let a = sim.add_node(Box::new(Sink));
        let z = sim.add_node(Box::new(Sink));
        let l = sim.add_link(LinkSpec::drop_tail(
            a,
            z,
            Rate::from_gbps(10),
            SimDuration::from_micros(10),
            1_000_000_000,
        ));
        if trace {
            let mut count = 0u64;
            sim.set_tracer(Box::new(move |_, ev| {
                count += 1;
                black_box((count, ev));
            }));
        }
        for i in 0..n {
            sim.core()
                .send_on(l, Packet::new(FlowId(i), a, z, 1500, 0u32));
        }
        sim.run_to_completion(10 * n);
        black_box(sim.events_processed());
    }

    let mut g = c.benchmark_group("link_pipeline");
    g.sample_size(10);
    g.throughput_elements(100_000);
    g.bench_function("tracing_disabled_1e5", || push_1e5(false));
    g.bench_function("tracing_enabled_1e5", || push_1e5(true));
    g.finish();
}

/// Drop-tail enqueue/dequeue cycle (arena-parked packets, handle moves).
fn queue_ops(c: &mut Bench) {
    let n = 100_000u64;
    let mut g = c.benchmark_group("queue_ops");
    g.throughput_elements(n);
    g.sample_size(10);
    g.bench_function("droptail_cycle", || {
        let mut arena: PacketArena<u32> = PacketArena::new();
        let mut q = DropTail::new(64 * 1500);
        let mut aqm_drops = Vec::new();
        let src = netsim::NodeId(0);
        let dst = netsim::NodeId(1);
        for i in 0..n {
            let h = arena.alloc(Packet::new(FlowId(i), src, dst, 1500, 0u32));
            if q.enqueue(arena.meta(h), SimTime::ZERO) == Verdict::Dropped {
                arena.free(h);
            }
            if i % 2 == 1 {
                if let Some(m) = black_box(q.dequeue(SimTime::ZERO, &mut aqm_drops)) {
                    arena.free(m.handle);
                }
            }
        }
        black_box(arena.live());
    });
    g.finish();
}

/// Packet-arena alloc/take churn at a steady in-flight depth, the access
/// pattern of a saturated link (every transmit allocates, every delivery
/// releases). Measures slab reuse + generation stamping overhead.
fn packet_arena(c: &mut Bench) {
    let n = 1_000_000u64;
    let depth = 256usize;
    let mut g = c.benchmark_group("packet_arena");
    g.throughput_elements(n);
    g.sample_size(10);
    g.bench_function("churn_1e6", || {
        let mut arena: PacketArena<u32> = PacketArena::new();
        let src = netsim::NodeId(0);
        let dst = netsim::NodeId(1);
        let mut in_flight = std::collections::VecDeque::with_capacity(depth);
        for i in 0..n {
            let h = arena.alloc(Packet::new(FlowId(i), src, dst, 1500, i as u32));
            in_flight.push_back(h);
            if in_flight.len() > depth {
                let h = in_flight.pop_front().unwrap();
                black_box(arena.take(h).size);
            }
        }
        black_box((arena.live(), arena.capacity()));
    });
    g.finish();
}

/// Sharded-engine coordination overhead: a single tiny packet circling a
/// ring of partitions, so each conservative window carries exactly one
/// cross-shard hop and the measurement is all barrier + mailbox + window
/// arithmetic, no simulation work. Run on one thread so the number is the
/// coordination cost itself, not contention.
fn shard_barrier(c: &mut Bench) {
    use netsim::shard::{run_sharded_with, ShardHandle, ShardHooks};
    use netsim::{LinkId, NodeId};

    /// Forwards the token to the next partition until its budget is spent.
    struct Ring {
        egress: LinkId,
        seen: u64,
    }
    impl Node<u64> for Ring {
        fn on_packet(&mut self, pkt: Packet<u64>, ctx: &mut netsim::Ctx<'_, u64>) {
            self.seen += 1;
            if pkt.payload > 0 {
                ctx.send(
                    self.egress,
                    Packet::new(pkt.flow, pkt.dst, pkt.dst, pkt.size, pkt.payload - 1),
                );
            }
        }
        fn on_timer(&mut self, _i: TimerId, _t: u64, _c: &mut netsim::Ctx<'_, u64>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    const PARTS: usize = 4;
    const HOPS: u64 = 2_000;

    // One ring circuit; `telemetry` toggles the per-window record path so
    // the gate can pin "telemetry off costs nothing" while the on-variant
    // documents what a record per (window, partition) adds.
    fn ring(telemetry: bool) {
        let hooks = ShardHooks {
            telemetry,
            ..ShardHooks::default()
        };
        let run = run_sharded_with(
            PARTS,
            1,
            None,
            hooks,
            |rank, handle: &mut ShardHandle<u64>| {
                let mut sim: Simulator<u64> = Simulator::new(rank as u64);
                let node = sim.add_node(Box::new(Ring {
                    egress: LinkId(1),
                    seen: 0,
                }));
                let ingress = sim.add_link(LinkSpec::drop_tail(
                    node,
                    node,
                    Rate::from_gbps(10),
                    SimDuration::ZERO,
                    1 << 20,
                ));
                let portal = handle.add_portal(
                    &mut sim,
                    (rank + 1) % PARTS,
                    NodeId(0),
                    ingress,
                    SimDuration::from_micros(100),
                );
                let egress = sim.add_link(LinkSpec::drop_tail(
                    node,
                    portal,
                    Rate::from_gbps(10),
                    SimDuration::ZERO,
                    1 << 20,
                ));
                assert_eq!(egress, LinkId(1));
                if rank == 0 {
                    sim.core()
                        .send_on(egress, Packet::new(FlowId(1), node, node, 64, HOPS));
                }
                sim
            },
            |_, sim: &mut Simulator<u64>| sim.node_as::<Ring>(NodeId(0)).unwrap().seen,
        );
        black_box((
            run.results.iter().sum::<u64>(),
            run.telemetry.map(|t| t.len()),
        ));
    }

    let mut g = c.benchmark_group("shard_barrier");
    g.sample_size(10);
    g.throughput_elements(HOPS);
    g.bench_function("ring_hop_2e3", || ring(false));
    g.bench_function("ring_hop_2e3_telemetry", || ring(true));
    g.finish();
}

/// The quantile sketch on the metrics hot path: insert cost for 1e6
/// samples (one bucket-key computation + BTreeMap bump each) and the cost
/// of merging 64 shard-local sketches into one aggregate — the two
/// operations large scenarios lean on instead of per-flow Ecdf samples.
fn quantile_sketch(c: &mut Bench) {
    use netsim::stats::LogHistogram;

    /// Deterministic positive samples spanning several octaves (the LCG
    /// keeps the distribution identical run to run).
    fn sample(lcg: &mut u64) -> f64 {
        *lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*lcg >> 33) % 1_000_000 + 1) as f64 / 1_000.0
    }

    let n = 1_000_000u64;
    let mut g = c.benchmark_group("quantile_sketch");
    g.sample_size(10);
    g.throughput_elements(n);
    g.bench_function("insert_1e6", || {
        let mut h = LogHistogram::new();
        let mut lcg: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..n {
            h.add(sample(&mut lcg));
        }
        black_box((h.count(), h.quantile(99.0)));
    });

    // Merge: 64 pre-built 10k-sample sketches folded into a fresh one per
    // iteration — the per-window/per-shard aggregation step.
    let parts: Vec<LogHistogram> = (0..64)
        .map(|i| {
            let mut h = LogHistogram::new();
            let mut lcg: u64 = 0x9e3779b97f4a7c15 ^ (i as u64).wrapping_mul(0xff51afd7ed558ccd);
            for _ in 0..10_000 {
                h.add(sample(&mut lcg));
            }
            h
        })
        .collect();
    g.throughput_elements(64);
    g.bench_function("merge_64x10k", || {
        let mut agg = LogHistogram::new();
        for p in &parts {
            agg.merge(p);
        }
        black_box((agg.count(), agg.quantile(50.0)));
    });
    g.finish();
}

/// Full transport stack: one 100 KB Halfback flow on the Emulab dumbbell.
fn transport_flow(c: &mut Bench) {
    let mut g = c.benchmark_group("transport_flow");
    g.sample_size(20);
    g.bench_function("halfback_100kb_dumbbell", || {
        let mut sim = transport::TransportSim::new(7);
        let net = build_dumbbell(&mut sim, &DumbbellSpec::emulab(1), |_, _| {
            Box::new(transport::Host::new())
        });
        sim.with_node_mut::<transport::Host, _>(net.left_hosts[0], |h, _| {
            h.wire(net.left_hosts[0], net.left_egress[0])
        });
        sim.with_node_mut::<transport::Host, _>(net.right_hosts[0], |h, _| {
            h.wire(net.right_hosts[0], net.right_egress[0])
        });
        sim.with_node_mut::<transport::Host, _>(net.left_hosts[0], |h, core| {
            h.start_flow(
                core,
                FlowId(1),
                net.right_hosts[0],
                100_000,
                Box::new(halfback::Halfback::new()),
            )
        });
        sim.run_to_completion(1_000_000);
        black_box(sim.events_processed());
    });
    g.finish();
}

/// Workload generation cost (path populations and schedules).
fn workload_generation(c: &mut Bench) {
    let mut g = c.benchmark_group("workload_generation");
    g.sample_size(10);
    g.bench_function("planetlab_2600_paths", || {
        black_box(workload::planetlab_paths(2600, 17));
    });
    g.bench_function("poisson_schedule_600s", || {
        black_box(workload::Schedule::fixed_size(
            Rate::from_mbps(15),
            100_000,
            0.5,
            SimTime::ZERO + SimDuration::from_secs(600),
            SimRng::new(5),
        ));
    });
    g.finish();
}

fn main() {
    run_benches(&[
        ("event_queue", event_queue),
        ("engine_throughput", engine_throughput),
        ("link_pipeline", link_pipeline),
        ("queue_ops", queue_ops),
        ("packet_arena", packet_arena),
        ("quantile_sketch", quantile_sketch),
        ("shard_barrier", shard_barrier),
        ("transport_flow", transport_flow),
        ("workload_generation", workload_generation),
    ]);
}

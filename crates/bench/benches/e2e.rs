//! End-to-end wall-clock benchmarks: whole experiments through the same
//! code path as `repro <id> --scale quick`, pinned to one worker so the
//! numbers measure the simulator, not the thread pool. These are the
//! figures the committed `BENCH_e2e.json` baseline tracks.

use bench::{run_benches, Bench};
use scenarios::figures::{chaos, planetlab, planetlab_sharded};
use scenarios::{harness, Scale};
use std::hint::black_box;

/// Figs. 5–8 (the `repro fig6` run): ~900 short PlanetLab-path simulations.
/// Dominated by per-simulation setup plus short event bursts — the
/// worst case for any event queue with per-run initialization cost.
fn fig6_quick(c: &mut Bench) {
    harness::set_workers(1);
    let mut g = c.benchmark_group("e2e");
    g.sample_size(10);
    g.bench_function("fig6_quick_jobs1", || {
        black_box(planetlab::figures(Scale::Quick));
        let _ = harness::take_metrics();
    });
    g.finish();
}

/// The chaos robustness sweep: longer simulations with fault injection,
/// retransmission timers, and frequent timer cancellation.
fn chaos_quick(c: &mut Bench) {
    harness::set_workers(1);
    let mut g = c.benchmark_group("e2e");
    g.sample_size(10);
    g.bench_function("chaos_quick_jobs1", || {
        black_box(chaos::figures(Scale::Quick));
        let _ = harness::take_metrics();
    });
    g.finish();
}

/// The scaled PlanetLab scenario on the sharded engine, one worker
/// thread: 8 partitions, 512 flows at quick scale, ~30 conservative
/// windows. Measures the sharded run loop (barriers + mailbox sweeps +
/// per-partition engines) with zero parallel speedup available — the
/// overhead floor the multi-thread configuration pays for.
fn planetlab_shards1(c: &mut Bench) {
    let mut g = c.benchmark_group("e2e");
    g.sample_size(10);
    g.bench_function("planetlab_shards1", || {
        black_box(planetlab_sharded::run(Scale::Quick, 1).completed);
        let _ = harness::take_metrics();
    });
    g.finish();
}

/// Same scenario on four worker threads. On a multi-core box this is the
/// speedup figure; the gate only holds it to "not pathologically slower
/// than shards1" so a single-core CI runner (where 4 threads time-slice
/// one core) stays green.
fn planetlab_shards4(c: &mut Bench) {
    let mut g = c.benchmark_group("e2e");
    g.sample_size(10);
    g.bench_function("planetlab_shards4", || {
        black_box(planetlab_sharded::run(Scale::Quick, 4).completed);
        let _ = harness::take_metrics();
    });
    g.finish();
}

fn main() {
    run_benches(&[
        ("fig6_quick", fig6_quick),
        ("chaos_quick", chaos_quick),
        ("planetlab_shards1", planetlab_shards1),
        ("planetlab_shards4", planetlab_shards4),
    ]);
}

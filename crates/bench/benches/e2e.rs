//! End-to-end wall-clock benchmarks: whole experiments through the same
//! code path as `repro <id> --scale quick`, pinned to one worker so the
//! numbers measure the simulator, not the thread pool. These are the
//! figures the committed `BENCH_e2e.json` baseline tracks.

use bench::{run_benches, Bench};
use scenarios::figures::{chaos, planetlab};
use scenarios::{harness, Scale};
use std::hint::black_box;

/// Figs. 5–8 (the `repro fig6` run): ~900 short PlanetLab-path simulations.
/// Dominated by per-simulation setup plus short event bursts — the
/// worst case for any event queue with per-run initialization cost.
fn fig6_quick(c: &mut Bench) {
    harness::set_workers(1);
    let mut g = c.benchmark_group("e2e");
    g.sample_size(10);
    g.bench_function("fig6_quick_jobs1", || {
        black_box(planetlab::figures(Scale::Quick));
        let _ = harness::take_metrics();
    });
    g.finish();
}

/// The chaos robustness sweep: longer simulations with fault injection,
/// retransmission timers, and frequent timer cancellation.
fn chaos_quick(c: &mut Bench) {
    harness::set_workers(1);
    let mut g = c.benchmark_group("e2e");
    g.sample_size(10);
    g.bench_function("chaos_quick_jobs1", || {
        black_box(chaos::figures(Scale::Quick));
        let _ = harness::take_metrics();
    });
    g.finish();
}

fn main() {
    run_benches(&[("fig6_quick", fig6_quick), ("chaos_quick", chaos_quick)]);
}

//! Minimal std-only micro-benchmark harness.
//!
//! The container this reproduction builds in has no access to crates.io,
//! so Criterion is out of reach; this module provides the small subset the
//! figure/engine benches need: named groups, warmup, a fixed sample count,
//! median/mean/min/p95 wall-clock reporting with adaptive units, optional
//! per-element throughput, machine-readable JSON output, and a regression
//! check against a committed baseline.
//!
//! Each bench target is a plain binary with `harness = false`. Invocation
//! (everything after `--` reaches the binary):
//!
//! ```text
//! cargo bench --bench engine                          # run everything
//! cargo bench --bench engine -- event_queue           # substring filter
//! cargo bench --bench engine -- --list                # list bench names
//! cargo bench --bench engine -- --json out.json       # also write JSON
//! cargo bench --bench engine -- --check BENCH_netsim.json
//! #   run, then exit non-zero if any median regressed >1.3x vs the
//! #   baseline, if a filter matched nothing, or if no bench ran at all
//! cargo bench --bench engine -- --baseline-covers BENCH_netsim.json
//! #   run nothing; exit non-zero unless every registered bench has a
//! #   baseline entry and the file passes halfback-bench-v1 validation
//! ```
//!
//! Positional arguments are substring filters (a bench runs if any filter
//! matches its registered name or its full `group/id`); `--`-prefixed
//! arguments are options, never filters — including flags cargo itself
//! forwards, like `--bench`, which are ignored.
//!
//! ## Noise handling
//!
//! The reported `median_ns` is the *minimum of K=3 block medians*: the
//! chronological samples are split into three consecutive blocks and each
//! block's median is taken. CI noise is time-correlated (a co-tenant burst,
//! a thermal dip) and inflates one block, not all three, so the min-of-
//! medians stays put where a whole-run median would drift — which is what
//! lets `--check` hold a 1.3x threshold instead of 2x without flaking.

use std::fmt::Write as _;
use std::time::Instant;

pub mod json;

/// Regression threshold for `--check`: fail if a median is more than this
/// factor slower than the committed baseline. The min-of-K-block-medians
/// estimator absorbs time-correlated runner noise, so the gate can sit
/// close to real regressions instead of the 2x "catastrophe-only" band the
/// plain median needed.
pub const CHECK_FACTOR: f64 = 1.3;

/// Number of consecutive sample blocks for the min-of-medians estimator.
pub const MEDIAN_BLOCKS: usize = 3;

/// One finished measurement, in nanoseconds.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full id, `group/function`.
    pub name: String,
    pub median_ns: f64,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub p95_ns: f64,
    pub samples: usize,
    /// Elements processed per iteration, when the group declares throughput.
    pub elements: Option<u64>,
}

impl BenchResult {
    /// Elements per second at the median, when throughput is declared.
    pub fn elements_per_sec(&self) -> Option<f64> {
        self.elements.map(|n| n as f64 / (self.median_ns / 1e9))
    }
}

/// Render a duration in nanoseconds with an adaptive unit (ns/µs/ms/s),
/// keeping three significant-ish digits.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Minimum of the medians of `k` consecutive blocks of `chronological`
/// samples. Blocks differ in length by at most one when `k` does not
/// divide the sample count; fewer samples than blocks degenerates to the
/// plain minimum (every block has one sample).
pub fn min_of_block_medians(chronological: &[f64], k: usize) -> f64 {
    let n = chronological.len();
    if n == 0 {
        return 0.0;
    }
    let k = k.clamp(1, n);
    let (base, rem) = (n / k, n % k);
    let mut best = f64::INFINITY;
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < rem);
        let mut block = chronological[start..start + len].to_vec();
        block.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        best = best.min(block[block.len() / 2]);
        start += len;
    }
    best
}

/// Parsed command line for a bench binary.
#[derive(Debug, Default)]
pub struct Config {
    /// Positional substring filters; empty means "run everything".
    pub filters: Vec<String>,
    /// `--list`: print bench names, run nothing.
    pub list: bool,
    /// `--json <path>`: write results as JSON after the run.
    pub json: Option<String>,
    /// `--check <path>`: compare medians against a committed baseline.
    pub check: Option<String>,
    /// `--baseline-covers <path>`: run nothing; verify every registered
    /// bench has an entry in the baseline file and the file validates
    /// against the `halfback-bench-v1` schema.
    pub baseline_covers: Option<String>,
}

impl Config {
    /// Parse `std::env::args`. Options start with `-`; anything else is a
    /// substring filter. Unknown options (e.g. the `--bench` flag cargo
    /// forwards to bench binaries) are ignored rather than being mistaken
    /// for filters.
    pub fn from_args() -> Config {
        Self::parse(std::env::args().skip(1))
    }

    fn parse(args: impl Iterator<Item = String>) -> Config {
        let mut cfg = Config::default();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--list" => cfg.list = true,
                "--json" => cfg.json = args.next(),
                "--check" => cfg.check = args.next(),
                "--baseline-covers" => cfg.baseline_covers = args.next(),
                _ if a.starts_with('-') => {} // cargo's --bench, etc.
                _ => cfg.filters.push(a),
            }
        }
        cfg
    }

    /// True when `name` passes the filters (no filters = run everything).
    pub fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }
}

/// One benchmark group: a name plus shared sample settings.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    samples: usize,
    elements: Option<u64>,
}

impl Group<'_> {
    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Report per-element throughput alongside wall-clock time.
    pub fn throughput_elements(&mut self, n: u64) -> &mut Self {
        self.elements = Some(n);
        self
    }

    /// Time `f` over the group's sample count and print a summary line.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut()) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        // Record which filters this bench satisfies, so the runner can fail
        // a `--check` where a filter silently matched nothing.
        let mut selected = self.bench.config.filters.is_empty() || self.bench.registered_matches;
        for (i, pat) in self.bench.config.filters.iter().enumerate() {
            if full.contains(pat.as_str()) {
                self.bench.filter_hits[i] = true;
                selected = true;
            }
        }
        if !selected {
            return self;
        }
        if self.bench.config.list || self.bench.collect_only {
            if self.bench.config.list {
                println!("{full}");
            }
            self.bench.collected.push(full);
            return self;
        }
        // One untimed warmup iteration (fills caches, faults pages).
        f();
        let mut ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            f();
            ns.push(t0.elapsed().as_nanos() as f64);
        }
        // Noise-aware median over the *chronological* samples (see module
        // docs), then order statistics over the sorted copy.
        let median_ns = min_of_block_medians(&ns, MEDIAN_BLOCKS);
        ns.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = ns.len();
        let result = BenchResult {
            name: full,
            median_ns,
            mean_ns: ns.iter().sum::<f64>() / n as f64,
            min_ns: ns[0],
            // Nearest-rank p95 (for n=10 this is the 10th sample).
            p95_ns: ns[(((0.95 * n as f64).ceil() as usize).clamp(1, n)) - 1],
            samples: n,
            elements: self.elements,
        };
        let mut line = format!(
            "{:<44} median {:>10}  mean {:>10}  min {:>10}  p95 {:>10}  ({} samples)",
            result.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.mean_ns),
            fmt_ns(result.min_ns),
            fmt_ns(result.p95_ns),
            result.samples,
        );
        if let Some(per_sec) = result.elements_per_sec() {
            let _ = write!(line, "  {:.3} M elem/s", per_sec / 1e6);
        }
        println!("{line}");
        self.bench.results.push(result);
        self
    }

    /// No-op, kept for call-site symmetry with Criterion.
    pub fn finish(&mut self) {}
}

/// Entry point handed to each bench function (Criterion-shaped). Collects
/// results so the runner can emit JSON / run the regression check.
pub struct Bench {
    config: Config,
    results: Vec<BenchResult>,
    /// The registered function name already matched a filter, so every
    /// group/id inside it runs regardless of its own name.
    registered_matches: bool,
    /// `filter_hits[i]` turns true once filter `i` selects anything —
    /// a registered function name or a `group/id`.
    filter_hits: Vec<bool>,
    /// Register names without running (`--list`, `--baseline-covers`).
    collect_only: bool,
    /// Names that passed the filters, in registration order.
    collected: Vec<String>,
}

impl Bench {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group {
            name: name.to_string(),
            samples: 10,
            elements: None,
            bench: self,
        }
    }
}

/// One registered bench function.
pub type BenchFn = fn(&mut Bench);

/// Fingerprint of the machine/build the numbers came from, for the JSON
/// output. Std-only, so it is coarse — enough to tell two baselines apart.
pub fn env_fingerprint() -> Vec<(String, String)> {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    vec![
        ("arch".to_string(), std::env::consts::ARCH.to_string()),
        ("os".to_string(), std::env::consts::OS.to_string()),
        ("cpus".to_string(), cpus.to_string()),
        (
            "profile".to_string(),
            if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            }
            .to_string(),
        ),
    ]
}

/// Serialize results to the `halfback-bench-v1` JSON document.
pub fn results_to_json(results: &[BenchResult]) -> String {
    let mut w = json::Writer::new();
    w.obj(|w| {
        w.key("schema").str("halfback-bench-v1");
        w.key("env").obj(|w| {
            for (k, v) in env_fingerprint() {
                if k == "cpus" {
                    w.key(&k).num(v.parse().unwrap_or(0.0));
                } else {
                    w.key(&k).str(&v);
                }
            }
        });
        w.key("results").arr(|w| {
            for r in results {
                w.elem().obj(|w| {
                    w.key("name").str(&r.name);
                    w.key("median_ns").num(r.median_ns);
                    w.key("mean_ns").num(r.mean_ns);
                    w.key("min_ns").num(r.min_ns);
                    w.key("p95_ns").num(r.p95_ns);
                    w.key("samples").num(r.samples as f64);
                    if let Some(n) = r.elements {
                        w.key("elements").num(n as f64);
                        w.key("elements_per_sec")
                            .num(r.elements_per_sec().unwrap_or(0.0));
                    }
                });
            }
        });
    });
    w.finish()
}

/// Extract `name -> median_ns` from a baseline document. Accepts either a
/// plain harness emission (top-level `results`) or the committed
/// before/after layout (compares against the `after` run's `results`).
pub fn baseline_medians(doc: &json::Value) -> Vec<(String, f64)> {
    let results = doc
        .get("results")
        .or_else(|| doc.get("after").and_then(|a| a.get("results")));
    let mut out = Vec::new();
    if let Some(json::Value::Array(items)) = results {
        for item in items {
            if let (Some(json::Value::String(name)), Some(json::Value::Number(m))) =
                (item.get("name"), item.get("median_ns"))
            {
                out.push((name.clone(), *m));
            }
        }
    }
    out
}

/// Run a list of bench functions under the parsed [`Config`]: apply
/// filters, honour `--list`, write `--json`, and perform the `--check`
/// regression comparison (exiting non-zero on failure).
pub fn run_benches(benches: &[(&str, BenchFn)]) {
    let config = Config::from_args();
    let n_filters = config.filters.len();
    let collect_only = config.baseline_covers.is_some();
    let mut b = Bench {
        config,
        results: Vec::new(),
        registered_matches: false,
        filter_hits: vec![false; n_filters],
        collect_only,
        collected: Vec::new(),
    };
    for (name, f) in benches {
        // A filter can select a whole registered function by its name, or
        // individual `group/id` benches inside any function; when the
        // function name itself matches, everything inside it runs.
        b.registered_matches = false;
        for (i, p) in b.config.filters.iter().enumerate() {
            if name.contains(p.as_str()) {
                b.filter_hits[i] = true;
                b.registered_matches = true;
            }
        }
        f(&mut b);
    }
    if let Some(path) = b.config.baseline_covers.clone() {
        check_baseline_covers(&b.collected, &path);
        return;
    }
    if let Some(path) = b.config.json.clone() {
        let doc = results_to_json(&b.results);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("bench: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("bench: wrote {} results to {path}", b.results.len());
    }
    if let Some(path) = b.config.check.clone() {
        // A check that silently ran nothing is a green light that gates
        // nothing: a typo'd filter must fail loudly, not pass quietly.
        let dead: Vec<&str> = b
            .config
            .filters
            .iter()
            .zip(&b.filter_hits)
            .filter(|(_, hit)| !**hit)
            .map(|(f, _)| f.as_str())
            .collect();
        if !dead.is_empty() {
            eprintln!(
                "bench: --check active but filter(s) matched no benchmark: {}",
                dead.join(", ")
            );
            std::process::exit(1);
        }
        if b.results.is_empty() {
            eprintln!("bench: --check active but no benchmark ran");
            std::process::exit(1);
        }
        check_against_baseline(&b.results, &path);
    }
}

/// Validate a parsed baseline document against the `halfback-bench-v1`
/// schema: a matching `schema` tag and a `results` array (top-level or
/// under `after`) whose entries each carry a string `name` and a numeric
/// `median_ns`.
pub fn validate_baseline_schema(doc: &json::Value) -> Result<(), String> {
    match doc.get("schema") {
        Some(json::Value::String(s)) if s == "halfback-bench-v1" => {}
        Some(json::Value::String(s)) => {
            return Err(format!("schema is \"{s}\", expected \"halfback-bench-v1\""));
        }
        _ => return Err("missing string `schema` field".to_string()),
    }
    let results = doc
        .get("results")
        .or_else(|| doc.get("after").and_then(|a| a.get("results")));
    let Some(json::Value::Array(items)) = results else {
        return Err("no `results` array (top-level or under `after`)".to_string());
    };
    for (i, item) in items.iter().enumerate() {
        if !matches!(item.get("name"), Some(json::Value::String(_))) {
            return Err(format!("results[{i}] lacks a string `name`"));
        }
        if !matches!(item.get("median_ns"), Some(json::Value::Number(_))) {
            return Err(format!("results[{i}] lacks a numeric `median_ns`"));
        }
    }
    Ok(())
}

fn check_baseline_covers(registered: &[String], path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench: cannot read baseline {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench: cannot parse baseline {path}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = validate_baseline_schema(&doc) {
        eprintln!("bench: {path} fails halfback-bench-v1 validation: {e}");
        std::process::exit(1);
    }
    let baseline = baseline_medians(&doc);
    let missing: Vec<&str> = registered
        .iter()
        .filter(|n| !baseline.iter().any(|(b, _)| b == *n))
        .map(|n| n.as_str())
        .collect();
    for (name, _) in &baseline {
        if !registered.iter().any(|n| n == name) {
            eprintln!("bench: warning: stale baseline entry {name} (no such bench)");
        }
    }
    if !missing.is_empty() {
        eprintln!(
            "bench: {} bench(es) have no entry in {path}: {}",
            missing.len(),
            missing.join(", ")
        );
        eprintln!("bench: regenerate the baseline with --json and commit it");
        std::process::exit(1);
    }
    eprintln!(
        "bench: {path} covers all {} registered benches",
        registered.len()
    );
}

fn check_against_baseline(results: &[BenchResult], path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench: cannot read baseline {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench: cannot parse baseline {path}: {e}");
            std::process::exit(1);
        }
    };
    let baseline = baseline_medians(&doc);
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    for r in results {
        let Some((_, base)) = baseline.iter().find(|(n, _)| n == &r.name) else {
            continue;
        };
        let ratio = r.median_ns / base;
        let verdict = if ratio > CHECK_FACTOR { "FAIL" } else { "ok" };
        println!(
            "check {:<44} baseline {:>10}  now {:>10}  ratio {ratio:.2}x  {verdict}",
            r.name,
            fmt_ns(*base),
            fmt_ns(r.median_ns),
        );
        rows.push((r.name.clone(), *base, r.median_ns, ratio));
    }
    if rows.is_empty() {
        eprintln!("bench: no benches matched the baseline in {path}");
        std::process::exit(1);
    }
    let failures: Vec<&(String, f64, f64, f64)> = rows
        .iter()
        .filter(|(_, _, _, r)| *r > CHECK_FACTOR)
        .collect();
    if !failures.is_empty() {
        // Repeat the full table on stderr, slowest-relative first, so the
        // tail of a CI log is diagnosable without scrolling back.
        let mut sorted: Vec<&(String, f64, f64, f64)> = rows.iter().collect();
        sorted.sort_by(|a, b| b.3.partial_cmp(&a.3).expect("finite"));
        eprintln!(
            "bench: {} regression(s) beyond {CHECK_FACTOR}x:",
            failures.len()
        );
        eprintln!(
            "{:<44} {:>12} {:>12} {:>8}  verdict",
            "bench", "baseline", "now", "ratio"
        );
        for (name, base, now, ratio) in sorted {
            eprintln!(
                "{name:<44} {:>12} {:>12} {ratio:>7.2}x  {}",
                fmt_ns(*base),
                fmt_ns(*now),
                if *ratio > CHECK_FACTOR { "FAIL" } else { "ok" },
            );
        }
        std::process::exit(1);
    }
    eprintln!(
        "bench: {} benches within {CHECK_FACTOR}x of baseline",
        rows.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(args: &[&str]) -> Config {
        Config::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn flags_are_not_filters() {
        // cargo forwards `--bench` to harness=false binaries; historically
        // it was treated as a filter that matched nothing.
        let c = cfg(&["--bench", "event_queue"]);
        assert_eq!(c.filters, vec!["event_queue".to_string()]);
        assert!(!c.list);
        let c = cfg(&["--list"]);
        assert!(c.list && c.filters.is_empty());
        let c = cfg(&["--json", "out.json", "--check", "base.json", "engine"]);
        assert_eq!(c.json.as_deref(), Some("out.json"));
        assert_eq!(c.check.as_deref(), Some("base.json"));
        assert_eq!(c.filters, vec!["engine".to_string()]);
        let c = cfg(&["--baseline-covers", "BENCH_netsim.json"]);
        assert_eq!(c.baseline_covers.as_deref(), Some("BENCH_netsim.json"));
        assert!(c.filters.is_empty());
    }

    #[test]
    fn empty_filter_matches_everything() {
        let c = cfg(&[]);
        assert!(c.matches("anything/at_all"));
        let c = cfg(&["queue"]);
        assert!(c.matches("event_queue/fire"));
        assert!(!c.matches("transport_flow/run"));
    }

    #[test]
    fn adaptive_units() {
        assert_eq!(fmt_ns(312.0), "312 ns");
        assert_eq!(fmt_ns(4_560.0), "4.56 µs");
        assert_eq!(fmt_ns(7_890_000.0), "7.89 ms");
        assert_eq!(fmt_ns(1_234_000_000.0), "1.234 s");
    }

    #[test]
    fn json_roundtrip_and_baseline_extraction() {
        let results = vec![BenchResult {
            name: "g/one".to_string(),
            median_ns: 1500.0,
            mean_ns: 1600.0,
            min_ns: 1400.0,
            p95_ns: 1900.0,
            samples: 10,
            elements: Some(1000),
        }];
        let text = results_to_json(&results);
        let doc = json::parse(&text).expect("own output parses");
        let medians = baseline_medians(&doc);
        assert_eq!(medians, vec![("g/one".to_string(), 1500.0)]);
        assert_eq!(
            doc.get("schema"),
            Some(&json::Value::String("halfback-bench-v1".to_string()))
        );
        // elements_per_sec = 1000 / 1.5µs ≈ 666.7M/s
        let eps = results[0].elements_per_sec().unwrap();
        assert!((eps - 1000.0 / 1.5e-6).abs() < 1.0);
    }

    #[test]
    fn min_of_block_medians_resists_a_noise_burst() {
        // A co-tenant burst inflating one block of three leaves the
        // estimator at the quiet blocks' median.
        let quiet_then_burst = [10.0, 10.0, 11.0, 10.0, 11.0, 10.0, 90.0, 95.0, 100.0];
        assert_eq!(min_of_block_medians(&quiet_then_burst, 3), 10.0);
        // A whole-run median over the same samples would report 11.0 and a
        // burst-first ordering would drag it higher still.
        let burst_then_quiet = [90.0, 95.0, 100.0, 10.0, 10.0, 11.0, 10.0, 11.0, 10.0];
        assert_eq!(min_of_block_medians(&burst_then_quiet, 3), 10.0);
        // Degenerate shapes: fewer samples than blocks, empty input.
        assert_eq!(min_of_block_medians(&[42.0, 7.0], 3), 7.0);
        assert_eq!(min_of_block_medians(&[], 3), 0.0);
        // k=1 is the plain median of all samples.
        assert_eq!(min_of_block_medians(&[5.0, 1.0, 9.0], 1), 5.0);
        // Uneven split (n=10, k=3 → blocks of 4/3/3).
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(min_of_block_medians(&v, 3), 3.0);
    }

    #[test]
    fn schema_validation_accepts_own_output_and_rejects_malformed() {
        let good = results_to_json(&[BenchResult {
            name: "g/one".to_string(),
            median_ns: 1500.0,
            mean_ns: 1600.0,
            min_ns: 1400.0,
            p95_ns: 1900.0,
            samples: 10,
            elements: None,
        }]);
        let doc = json::parse(&good).unwrap();
        assert!(validate_baseline_schema(&doc).is_ok());

        // Before/after layout validates against the `after` run.
        let nested = format!("{{\"schema\":\"halfback-bench-v1\",\"after\":{good}}}");
        let doc = json::parse(&nested).unwrap();
        assert!(validate_baseline_schema(&doc).is_ok());

        let wrong_tag = r#"{"schema":"halfback-bench-v2","results":[]}"#;
        let err = validate_baseline_schema(&json::parse(wrong_tag).unwrap()).unwrap_err();
        assert!(err.contains("halfback-bench-v1"), "{err}");

        let no_results = r#"{"schema":"halfback-bench-v1"}"#;
        let err = validate_baseline_schema(&json::parse(no_results).unwrap()).unwrap_err();
        assert!(err.contains("results"), "{err}");

        let bad_entry =
            r#"{"schema":"halfback-bench-v1","results":[{"name":"g/one","median_ns":"fast"}]}"#;
        let err = validate_baseline_schema(&json::parse(bad_entry).unwrap()).unwrap_err();
        assert!(err.contains("median_ns"), "{err}");

        let no_name = r#"{"schema":"halfback-bench-v1","results":[{"median_ns":1.0}]}"#;
        let err = validate_baseline_schema(&json::parse(no_name).unwrap()).unwrap_err();
        assert!(err.contains("name"), "{err}");
    }

    #[test]
    fn filter_hit_tracking_flags_dead_filters() {
        let mut b = Bench {
            config: cfg(&["event_queue", "no_such_bench"]),
            results: Vec::new(),
            registered_matches: false,
            filter_hits: vec![false; 2],
            collect_only: true,
            collected: Vec::new(),
        };
        b.benchmark_group("event_queue")
            .bench_function("fire", || {})
            .finish();
        b.benchmark_group("queue_ops")
            .bench_function("cycle", || {})
            .finish();
        assert_eq!(b.filter_hits, vec![true, false]);
        // Collect-only mode registers only the selected names, runs nothing.
        assert_eq!(b.collected, vec!["event_queue/fire".to_string()]);
        assert!(b.results.is_empty());
    }
}

//! Minimal std-only micro-benchmark harness.
//!
//! The container this reproduction builds in has no access to crates.io,
//! so Criterion is out of reach; this module provides the small subset the
//! figure/engine benches need: named groups, warmup, a fixed sample count,
//! and median/mean wall-clock reporting (plus optional per-element
//! throughput). Run with `cargo bench` — each bench target is a plain
//! binary with `harness = false`.

use std::time::{Duration, Instant};

/// One benchmark group: a name plus shared sample settings.
pub struct Group {
    name: String,
    samples: usize,
    elements: Option<u64>,
}

impl Group {
    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Report per-element throughput alongside wall-clock time.
    pub fn throughput_elements(&mut self, n: u64) -> &mut Self {
        self.elements = Some(n);
        self
    }

    /// Time `f` over the group's sample count and print a summary line.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut()) -> &mut Self {
        // One untimed warmup iteration (fills caches, faults pages).
        f();
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            f();
            times.push(t0.elapsed());
        }
        times.sort();
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        let mut line = format!(
            "{}/{:<28} median {:>10.3} ms  mean {:>10.3} ms  ({} samples)",
            self.name,
            id,
            median.as_secs_f64() * 1e3,
            mean.as_secs_f64() * 1e3,
            times.len()
        );
        if let Some(n) = self.elements {
            let per_sec = n as f64 / median.as_secs_f64();
            line.push_str(&format!("  {per_sec:.0} elem/s"));
        }
        println!("{line}");
        self
    }

    /// No-op, kept for call-site symmetry with Criterion.
    pub fn finish(&mut self) {}
}

/// Entry point handed to each bench function (Criterion-shaped).
#[derive(Default)]
pub struct Bench;

impl Bench {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> Group {
        Group {
            name: name.to_string(),
            samples: 10,
            elements: None,
        }
    }
}

/// One registered bench function.
pub type BenchFn = fn(&mut Bench);

/// Run a list of bench functions, honoring an optional substring filter
/// passed on the command line: `cargo bench -- <filter>` runs only the
/// functions whose registered name contains the filter.
pub fn run_benches(benches: &[(&str, BenchFn)]) {
    let filter: Option<String> = std::env::args().nth(1).filter(|a| !a.starts_with('-'));
    let mut b = Bench;
    for (name, f) in benches {
        if let Some(pat) = &filter {
            if !name.contains(pat.as_str()) {
                continue;
            }
        }
        f(&mut b);
    }
}

//! Hand-rolled JSON writer and minimal parser.
//!
//! No serde in this container, and the bench harness only needs the subset
//! it emits itself: objects, arrays, strings, finite numbers, booleans,
//! null. The writer pretty-prints with two-space indentation so committed
//! baselines diff cleanly; the parser is a small recursive-descent reader
//! for the same subset (with standard escape handling).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    /// BTreeMap keeps key order deterministic when re-serialized.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` for any other variant.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming pretty-printer. Usage follows the document structure:
///
/// ```
/// let mut w = bench::json::Writer::new();
/// w.obj(|w| {
///     w.key("name").str("engine");
///     w.key("values").arr(|w| {
///         w.elem().num(1.0);
///         w.elem().num(2.0);
///     });
/// });
/// let text = w.finish();
/// assert!(text.contains("\"engine\""));
/// ```
pub struct Writer {
    out: String,
    indent: usize,
    /// Whether the current container already has a member (comma needed).
    needs_comma: Vec<bool>,
}

impl Writer {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Writer {
        Writer {
            out: String::new(),
            indent: 0,
            needs_comma: Vec::new(),
        }
    }

    fn newline_and_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn begin_member(&mut self) {
        if let Some(comma) = self.needs_comma.last_mut() {
            if *comma {
                self.out.push(',');
            }
            *comma = true;
            self.newline_and_indent();
        }
    }

    /// Start an object member; follow with one value call (`str`/`num`/...).
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.begin_member();
        write_escaped(&mut self.out, k);
        self.out.push_str(": ");
        self
    }

    /// Start an array element; follow with one value call.
    pub fn elem(&mut self) -> &mut Self {
        self.begin_member();
        self
    }

    /// Write an object value; `f` fills in its members via [`Writer::key`].
    pub fn obj(&mut self, f: impl FnOnce(&mut Writer)) -> &mut Self {
        self.out.push('{');
        self.indent += 1;
        self.needs_comma.push(false);
        f(self);
        let had_members = self.needs_comma.pop() == Some(true);
        self.indent -= 1;
        if had_members {
            self.newline_and_indent();
        }
        self.out.push('}');
        self
    }

    /// Write an array value; `f` fills in elements via [`Writer::elem`].
    pub fn arr(&mut self, f: impl FnOnce(&mut Writer)) -> &mut Self {
        self.out.push('[');
        self.indent += 1;
        self.needs_comma.push(false);
        f(self);
        let had_members = self.needs_comma.pop() == Some(true);
        self.indent -= 1;
        if had_members {
            self.newline_and_indent();
        }
        self.out.push(']');
        self
    }

    pub fn str(&mut self, s: &str) -> &mut Self {
        write_escaped(&mut self.out, s);
        self
    }

    /// Finite numbers only; integers print without a trailing `.0`.
    pub fn num(&mut self, n: f64) -> &mut Self {
        assert!(n.is_finite(), "non-finite number in JSON: {n}");
        if n.fract() == 0.0 && n.abs() < 1e15 {
            let _ = write!(self.out, "{}", n as i64);
        } else {
            let _ = write!(self.out, "{n}");
        }
        self
    }

    pub fn bool(&mut self, b: bool) -> &mut Self {
        self.out.push_str(if b { "true" } else { "false" });
        self
    }

    pub fn null(&mut self) -> &mut Self {
        self.out.push_str("null");
        self
    }

    /// The document text, with a trailing newline.
    pub fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse a JSON document. Errors carry a byte offset and a short message.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // output; map them to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // slicing at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let ch_len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = std::str::from_utf8(&rest[..ch_len])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    s.push_str(chunk);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_valid_nested_document() {
        let mut w = Writer::new();
        w.obj(|w| {
            w.key("name").str("a \"quoted\"\nname");
            w.key("n").num(42.0);
            w.key("pi").num(3.25);
            w.key("flag").bool(true);
            w.key("nothing").null();
            w.key("list").arr(|w| {
                w.elem().num(1.0);
                w.elem().obj(|w| {
                    w.key("x").num(-2.5);
                });
                w.elem().arr(|_| {});
            });
        });
        let text = w.finish();
        let v = parse(&text).expect("parses");
        assert_eq!(
            v.get("name"),
            Some(&Value::String("a \"quoted\"\nname".to_string()))
        );
        assert_eq!(v.get("n"), Some(&Value::Number(42.0)));
        assert_eq!(v.get("flag"), Some(&Value::Bool(true)));
        assert_eq!(v.get("nothing"), Some(&Value::Null));
        match v.get("list") {
            Some(Value::Array(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[1].get("x"), Some(&Value::Number(-2.5)));
                assert_eq!(items[2], Value::Array(Vec::new()));
            }
            other => panic!("bad list: {other:?}"),
        }
    }

    #[test]
    fn parser_handles_whitespace_escapes_and_exponents() {
        let v = parse(" { \"a\" : [ 1e3 , -4.5E-1, \"t\\tab\\u0041\" ] } ").unwrap();
        match v.get("a") {
            Some(Value::Array(items)) => {
                assert_eq!(items[0], Value::Number(1000.0));
                assert_eq!(items[1], Value::Number(-0.45));
                assert_eq!(items[2], Value::String("t\tabA".to_string()));
            }
            other => panic!("bad: {other:?}"),
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nope").is_err());
    }
}

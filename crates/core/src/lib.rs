//! # halfback — Running Short Flows Quickly and Safely
//!
//! Reproduction of the transport scheme from *Halfback: Running Short Flows
//! Quickly and Safely* (Qingxi Li, Mo Dong, P. Brighten Godfrey,
//! CoNEXT 2015). Halfback is a sender-side mechanism for short flows with
//! two phases:
//!
//! * a **Pacing phase** that paces the whole flow (up to a Pacing
//!   Threshold) evenly over the first RTT, and
//! * a **Reverse-Ordered Proactive Retransmission (ROPR) phase** that,
//!   clocked one-for-one by returning ACKs, proactively retransmits
//!   not-yet-acknowledged segments from the *end* of the flow backwards —
//!   repairing the tail losses an aggressive start causes before any loss
//!   signal exists, while never sending faster than the bottleneck drains.
//!
//! Typically the descending retransmission stream meets the ascending ACK
//! stream in the middle, so about half the flow is retransmitted — hence
//! the name. Flows longer than the threshold fall back to TCP congestion
//! avoidance seeded with an ACK-derived rate estimate.
//!
//! ## Quick example
//!
//! ```
//! use halfback::Halfback;
//! use netsim::topology::{build_dumbbell, DumbbellSpec};
//! use netsim::FlowId;
//! use transport::{Host, TransportSim};
//!
//! // The paper's Emulab dumbbell: 15 Mbps / 60 ms RTT / 115 KB buffer.
//! let mut sim = TransportSim::new(42);
//! let net = build_dumbbell(&mut sim, &DumbbellSpec::emulab(1), |_, _| Box::new(Host::new()));
//! sim.with_node_mut::<Host, _>(net.left_hosts[0], |h, _| h.wire(net.left_hosts[0], net.left_egress[0]));
//! sim.with_node_mut::<Host, _>(net.right_hosts[0], |h, _| h.wire(net.right_hosts[0], net.right_egress[0]));
//!
//! // A 100 KB short flow, Halfback-transmitted.
//! sim.with_node_mut::<Host, _>(net.left_hosts[0], |h, core| {
//!     h.start_flow(core, FlowId(1), net.right_hosts[0], 100_000, Box::new(Halfback::new()))
//! });
//! sim.run_to_completion(1_000_000);
//!
//! let record = &sim.node_as::<Host>(net.left_hosts[0]).unwrap().completed()[0];
//! // Handshake + paced RTT + final ACK: ~3 RTTs, far below TCP's ~7.
//! assert!(record.fct.as_millis_f64() < 200.0);
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod config;
pub mod sender;

pub use adaptive::{rate_cache, AdaptiveHalfback, RateCache};
pub use config::{HalfbackConfig, RoprVariant};
pub use sender::Halfback;

//! Halfback configuration: the Pacing Threshold, the ROPR variant (for the
//! §5 ablations), and the optional extensions the paper names.

/// Order and rate policy of the proactive retransmission phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoprVariant {
    /// The paper's design: reverse order, one retransmission per ACK
    /// received (§3.2).
    Reverse,
    /// Ablation (§5, "Retransmission direction"): forward order, same rate.
    /// Feasible capacity collapses because the front of the flow rarely
    /// holds the losses.
    Forward,
    /// Ablation (§5, "Retransmission rate"): reverse order but the entire
    /// proactive batch is burst at line rate on the first ACK.
    Burst,
    /// ROPR disabled entirely (pacing-only — behaves like JumpStart's
    /// startup with Halfback's reactive policy; used in ablation benches).
    Off,
}

/// Configuration of a Halfback sender.
#[derive(Debug, Clone)]
pub struct HalfbackConfig {
    /// Pacing Threshold in bytes (§3.1): at most this much is sent in the
    /// aggressive Pacing + ROPR phases; the rest falls back to TCP (§3.3).
    /// `None` means "use the receiver's advertised flow-control window",
    /// which is what the paper's experiments do (§4.1).
    pub pacing_threshold: Option<u64>,
    /// Proactive retransmission variant.
    pub variant: RoprVariant,
    /// Proactive retransmissions per ACK, as a `(sends, acks)` ratio.
    /// `(1, 1)` is the paper's design; §5 floats e.g. `(2, 3)` as future
    /// work ("two retransmissions for every three ACKs").
    pub ropr_ratio: (u32, u32),
    /// §4.2.4 refinement: burst this many segments immediately before the
    /// paced stream starts (0 disables; 10 mimics TCP-10's head start so
    /// tiny flows skip the pacing delay).
    pub burst_first_segments: u32,
}

impl Default for HalfbackConfig {
    fn default() -> Self {
        HalfbackConfig {
            pacing_threshold: None,
            variant: RoprVariant::Reverse,
            ropr_ratio: (1, 1),
            burst_first_segments: 0,
        }
    }
}

impl HalfbackConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self::default()
    }

    /// The Halfback-Forward ablation (§5).
    pub fn forward() -> Self {
        HalfbackConfig {
            variant: RoprVariant::Forward,
            ..Self::default()
        }
    }

    /// The Halfback-Burst ablation (§5).
    pub fn burst() -> Self {
        HalfbackConfig {
            variant: RoprVariant::Burst,
            ..Self::default()
        }
    }

    /// Pacing-only (ROPR off) — isolates the startup phase.
    pub fn pacing_only() -> Self {
        HalfbackConfig {
            variant: RoprVariant::Off,
            ..Self::default()
        }
    }

    /// The §4.2.4 burst-first refinement with a 10-segment head start.
    pub fn burst_first() -> Self {
        HalfbackConfig {
            burst_first_segments: 10,
            ..Self::default()
        }
    }

    /// Tunable proactive bandwidth (§5 future work): `sends` proactive
    /// retransmissions for every `acks` ACKs.
    pub fn with_ratio(sends: u32, acks: u32) -> Self {
        assert!(sends > 0 && acks > 0, "ratio parts must be positive");
        HalfbackConfig {
            ropr_ratio: (sends, acks),
            ..Self::default()
        }
    }

    /// The display name for reports.
    pub fn display_name(&self) -> &'static str {
        match self.variant {
            RoprVariant::Reverse => {
                if self.burst_first_segments > 0 {
                    "Halfback-BurstFirst"
                } else if self.ropr_ratio != (1, 1) {
                    "Halfback-Tuned"
                } else {
                    "Halfback"
                }
            }
            RoprVariant::Forward => "Halfback-Forward",
            RoprVariant::Burst => "Halfback-Burst",
            RoprVariant::Off => "Halfback-NoROPR",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(HalfbackConfig::paper().display_name(), "Halfback");
        assert_eq!(HalfbackConfig::forward().display_name(), "Halfback-Forward");
        assert_eq!(HalfbackConfig::burst().display_name(), "Halfback-Burst");
        assert_eq!(
            HalfbackConfig::pacing_only().display_name(),
            "Halfback-NoROPR"
        );
        assert_eq!(
            HalfbackConfig::burst_first().display_name(),
            "Halfback-BurstFirst"
        );
        assert_eq!(
            HalfbackConfig::with_ratio(2, 3).display_name(),
            "Halfback-Tuned"
        );
    }

    #[test]
    #[should_panic]
    fn zero_ratio_rejected() {
        HalfbackConfig::with_ratio(0, 1);
    }
}

//! The §3.1 threshold alternative the paper names but does not evaluate:
//! "set the threshold to the largest throughput observed on recent
//! connections, times the RTT derived from the three-way handshake. This
//! setting efficiently avoids a too-aggressive startup phase."
//!
//! [`AdaptiveHalfback`] wraps the regular sender with a shared per-path
//! throughput cache; each completed flow deposits its achieved delivery
//! rate, and the next flow to the same destination paces at most
//! `observed_rate x handshake RTT` bytes in its aggressive phase.

use crate::config::HalfbackConfig;
use crate::sender::Halfback;
use netsim::{NodeId, Rate};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use transport::scoreboard::AckOutcome;
use transport::sender::Ops;
use transport::strategy::{PaceAction, Strategy};
use transport::wire::{AckHeader, ProbeAckHeader, SegId, MSS};

/// Shared per-path record of the best observed delivery rate.
pub type RateCache = Rc<RefCell<HashMap<(NodeId, NodeId), Rate>>>;

/// Create an empty rate cache for a scenario.
pub fn rate_cache() -> RateCache {
    Rc::new(RefCell::new(HashMap::new()))
}

/// Serialize a rate cache into the checkpoint codec. Like TCP-Cache's path
/// cache, this is scenario-level state shared across flows and must be
/// checkpointed by the driver, not by any one sender.
pub fn save_rate_cache(cache: &RateCache, w: &mut netsim::snap::SnapWriter) {
    let cache = cache.borrow();
    let mut keys: Vec<(NodeId, NodeId)> = cache.keys().copied().collect();
    keys.sort_unstable_by_key(|(a, b)| (a.0, b.0));
    w.usize(keys.len());
    for k in keys {
        w.u32(k.0 .0);
        w.u32(k.1 .0);
        w.u64(cache[&k].as_bps());
    }
}

/// Rebuild a rate cache saved by [`save_rate_cache`] into `cache`
/// (replacing its contents).
pub fn load_rate_cache(
    cache: &RateCache,
    r: &mut netsim::snap::SnapReader<'_>,
) -> Result<(), netsim::snap::SnapError> {
    let mut map = HashMap::new();
    let n = r.usize()?;
    for _ in 0..n {
        let key = (NodeId(r.u32()?), NodeId(r.u32()?));
        map.insert(key, Rate::from_bps(r.u64()?));
    }
    *cache.borrow_mut() = map;
    Ok(())
}

/// Halfback with the observed-throughput Pacing Threshold.
pub struct AdaptiveHalfback {
    inner: Option<Halfback>,
    cfg: HalfbackConfig,
    cache: RateCache,
    key: (NodeId, NodeId),
}

impl AdaptiveHalfback {
    /// An adaptive sender for the path `key`, sharing `cache` with the
    /// scenario's other flows.
    pub fn new(cache: RateCache, key: (NodeId, NodeId)) -> Self {
        AdaptiveHalfback {
            inner: None,
            cfg: HalfbackConfig::paper(),
            cache,
            key,
        }
    }

    fn inner(&mut self) -> &mut Halfback {
        self.inner.as_mut().expect("on_established must run first")
    }
}

impl Strategy for AdaptiveHalfback {
    fn name(&self) -> &'static str {
        "Halfback-Adaptive"
    }

    fn on_established(&mut self, ops: &mut Ops<'_, '_>) {
        // Threshold = best observed rate x this handshake's RTT sample,
        // floored at ten segments so a noisy history cannot strangle the
        // startup entirely. First contact falls back to the paper default
        // (the receiver window).
        let mut cfg = self.cfg.clone();
        if let Some(&rate) = self.cache.borrow().get(&self.key) {
            if let Some(rtt) = ops.rtt().latest() {
                let threshold = rate.bytes_in(rtt).max(10 * MSS as u64);
                cfg.pacing_threshold = Some(threshold);
            }
        }
        let mut inner = Halfback::with_config(cfg);
        inner.on_established(ops);
        self.inner = Some(inner);
    }

    fn on_ack(&mut self, ops: &mut Ops<'_, '_>, ack: &AckHeader, outcome: &AckOutcome) {
        self.inner().on_ack(ops, ack, outcome);
    }

    fn on_loss_detected(&mut self, ops: &mut Ops<'_, '_>, newly_lost: &[SegId]) {
        self.inner().on_loss_detected(ops, newly_lost);
    }

    fn on_rto(&mut self, ops: &mut Ops<'_, '_>) {
        self.inner().on_rto(ops);
    }

    fn on_pace_tick(&mut self, ops: &mut Ops<'_, '_>) -> PaceAction {
        self.inner().on_pace_tick(ops)
    }

    fn on_pto(&mut self, ops: &mut Ops<'_, '_>) {
        self.inner().on_pto(ops);
    }

    fn on_user_timer(&mut self, ops: &mut Ops<'_, '_>, token: u64) {
        self.inner().on_user_timer(ops, token);
    }

    fn on_probe_ack(&mut self, ops: &mut Ops<'_, '_>, pa: &ProbeAckHeader) {
        self.inner().on_probe_ack(ops, pa);
    }

    fn on_complete(&mut self, ops: &mut Ops<'_, '_>) {
        // Deposit the achieved delivery rate (payload bytes over the data
        // transfer time, handshake excluded).
        let elapsed = ops.now().saturating_since(ops.established_at());
        if elapsed.is_zero() {
            return;
        }
        if let Some(rate) = Rate::for_bytes_in(ops.flow_bytes(), elapsed) {
            let mut cache = self.cache.borrow_mut();
            let entry = cache.entry(self.key).or_insert(rate);
            // "Largest throughput observed on recent connections".
            if rate > *entry {
                *entry = rate;
            } else {
                // Age gently toward the newest observation so stale spikes
                // decay: keep 3/4 old + 1/4 new.
                *entry = Rate::from_bps((entry.as_bps() / 4) * 3 + rate.as_bps() / 4);
            }
        }
    }

    fn save_state(&self, w: &mut netsim::snap::SnapWriter) {
        // The shared rate cache is checkpointed by the driver via
        // [`save_rate_cache`]; here only the wrapped sender's state.
        w.bool(self.inner.is_some());
        if let Some(inner) = &self.inner {
            inner.save_state(w);
        }
    }

    fn load_state(
        &mut self,
        r: &mut netsim::snap::SnapReader<'_>,
    ) -> Result<(), netsim::snap::SnapError> {
        self.inner = if r.bool()? {
            let mut inner = Halfback::with_config(self.cfg.clone());
            inner.load_state(r)?;
            Some(inner)
        } else {
            None
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_cache_is_shared_and_empty() {
        let c = rate_cache();
        assert!(c.borrow().is_empty());
        let c2 = c.clone();
        c.borrow_mut()
            .insert((NodeId(0), NodeId(1)), Rate::from_mbps(10));
        assert_eq!(c2.borrow().len(), 1);
    }
}

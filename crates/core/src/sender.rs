//! The Halfback sender (§3).
//!
//! Three phases:
//!
//! 1. **Pacing** (§3.1) — after the handshake, pace
//!    `min(flow size, flow-control window, Pacing Threshold)` evenly over
//!    one RTT. ACKs arriving before pacing finishes do not trigger
//!    proactive retransmission.
//! 2. **ROPR** (§3.2) — from the first ACK after pacing completes, each
//!    received ACK clocks out one proactive retransmission of the highest
//!    not-yet-covered segment, moving *backwards* through the flow. ROPR
//!    ends when the descending cursor meets the advancing cumulative ACK —
//!    in the loss-free case, in the middle of the flow (hence "Halfback").
//!    Normal TCP loss recovery (SACK fast retransmit + RTO) runs in
//!    parallel, but reactive retransmissions stay ACK-clocked: at most one
//!    packet leaves per ACK received, so retransmission never bursts.
//! 3. **Fallback** (§3.3) — flows longer than the Pacing Threshold continue
//!    under standard congestion avoidance with the window seeded at
//!    `s · RTT`, where `s` is the ACK-derived delivery rate of the paced
//!    prefix.

use crate::config::{HalfbackConfig, RoprVariant};
use netsim::{SimDuration, SimTime};
use transport::reno::{RenoConfig, RenoEngine};
use transport::scoreboard::AckOutcome;
use transport::sender::Ops;
use transport::strategy::{PaceAction, Strategy};
use transport::trace::FlowEvent;
use transport::wire::{segment_count, AckHeader, SegId, SendClass, MSS};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HbPhase {
    /// Paced first transmission of the batch.
    Pacing,
    /// ACK-clocked proactive retransmission (and ACK-clocked reactive
    /// recovery after the ROPR cursor is exhausted).
    Ropr,
    /// Standard congestion avoidance for the post-threshold remainder.
    Fallback,
}

/// The Halfback sender strategy.
#[derive(Debug)]
pub struct Halfback {
    cfg: HalfbackConfig,
    phase: HbPhase,
    /// Segments in the aggressive batch (`min(flow, window, threshold)`).
    batch_segs: u32,
    /// Next batch segment the pacer will transmit.
    next_paced: SegId,
    /// ROPR cursor: proactive retransmission considers only segments below
    /// this; strictly decreasing so each segment is sent proactively at
    /// most once.
    ropr_cursor: SegId,
    /// ROPR has exhausted its cursor (met the cumulative ACK).
    ropr_done: bool,
    /// Accumulator for the `(sends, acks)` proactive ratio.
    ratio_acc: u32,
    /// Suppress the proactive send for the ACK that just triggered a
    /// reactive retransmission (keeps Halfback at <= 1 packet per ACK).
    skip_next_ropr: bool,
    /// When the pacing phase started (for the fallback rate estimate).
    pacing_started: SimTime,
    /// The "normal TCP runs in parallel" engine (§3.2): window-governed
    /// reactive retransmission during ROPR, created when pacing ends; after
    /// the paced prefix is delivered it becomes the §3.3 fallback engine
    /// (seeded with `s · RTT` and allowed to send post-threshold data).
    reactive: Option<RenoEngine>,
}

impl Halfback {
    /// A Halfback sender with the given configuration.
    pub fn with_config(cfg: HalfbackConfig) -> Self {
        Halfback {
            cfg,
            phase: HbPhase::Pacing,
            batch_segs: 0,
            next_paced: 0,
            ropr_cursor: 0,
            ropr_done: false,
            ratio_acc: 0,
            skip_next_ropr: false,
            pacing_started: SimTime::ZERO,
            reactive: None,
        }
    }

    /// The paper's Halfback.
    pub fn new() -> Self {
        Self::with_config(HalfbackConfig::paper())
    }

    /// Did ROPR finish (tests/inspection)?
    pub fn ropr_finished(&self) -> bool {
        self.ropr_done
    }

    fn enter_ropr(&mut self, ops: &mut Ops<'_, '_>) {
        self.phase = HbPhase::Ropr;
        self.ropr_cursor = self.batch_segs;
        self.ropr_done = matches!(self.cfg.variant, RoprVariant::Off);
        // The parallel "normal TCP" machinery: a window-governed reactive
        // engine. Conservative seed — half the paced batch — so reactive
        // retransmission stays ACK-clocked rather than bursting (the
        // limited-aggressiveness property the paper contrasts with
        // JumpStart's line-rate retransmission bursts).
        let batch_bytes: u64 = (0..self.batch_segs)
            .map(|s| ops.board().seg_bytes(s) as u64)
            .sum();
        let mut reno = RenoEngine::new(RenoConfig {
            icw_segments: 2,
            ..Default::default()
        });
        reno.set_cwnd((batch_bytes / 2).max(2 * MSS as u64));
        reno.set_ssthresh(reno.cwnd());
        reno.set_new_data_limit(Some(self.batch_segs));
        self.reactive = Some(reno);
    }

    /// One ACK's worth of ROPR: send up to `ratio` proactive copies of the
    /// highest uncovered segments below the cursor.
    fn ropr_step(&mut self, ops: &mut Ops<'_, '_>) {
        if self.ropr_done {
            return;
        }
        match self.cfg.variant {
            RoprVariant::Off => {}
            RoprVariant::Burst => {
                // Ablation: entire proactive batch at line rate, once.
                while let Some(seg) = ops.board().highest_uncovered_below(self.ropr_cursor) {
                    if seg < ops.board().cum_ack() {
                        break;
                    }
                    ops.send_segment(seg, SendClass::Proactive);
                    self.ropr_cursor = seg;
                    if seg == 0 {
                        break;
                    }
                }
                self.ropr_done = true;
            }
            RoprVariant::Reverse | RoprVariant::Forward => {
                let (sends, acks) = self.cfg.ropr_ratio;
                self.ratio_acc += sends;
                while self.ratio_acc >= acks {
                    self.ratio_acc -= acks;
                    if !self.ropr_send_one(ops) {
                        self.ropr_done = true;
                        // The descending cursor met the advancing cumulative
                        // ACK: record where (the paper's "≈ 50%" claim is
                        // cursor / batch ≈ 0.5 on a loss-free path). Only
                        // this natural meet counts — the RTO path sets
                        // `ropr_done` without one.
                        ops.record(FlowEvent::RoprMeet {
                            cursor: self.ropr_cursor,
                            cum_ack: ops.board().cum_ack(),
                            batch_segs: self.batch_segs,
                        });
                        break;
                    }
                }
            }
        }
    }

    /// Send one proactive retransmission; false when none remain.
    fn ropr_send_one(&mut self, ops: &mut Ops<'_, '_>) -> bool {
        match self.cfg.variant {
            RoprVariant::Reverse => {
                // Descend to the next segment that is neither covered nor
                // already retransmitted by the parallel reactive machinery
                // (a second copy of those would be pure waste).
                loop {
                    match ops.board().highest_uncovered_below(self.ropr_cursor) {
                        Some(seg) if seg >= ops.board().cum_ack() => {
                            self.ropr_cursor = seg;
                            if ops.board().was_retransmitted(seg) {
                                if seg == ops.board().cum_ack() {
                                    return false;
                                }
                                continue;
                            }
                            ops.send_segment(seg, SendClass::Proactive);
                            return seg > ops.board().cum_ack();
                        }
                        _ => return false,
                    }
                }
            }
            RoprVariant::Forward => {
                // Ablation: lowest uncovered at-or-above the (ascending)
                // cursor. Reuses `ropr_cursor` as the ascending pointer,
                // initialised to batch_segs; treat that sentinel as 0.
                if self.ropr_cursor == self.batch_segs && !self.ropr_done {
                    self.ropr_cursor = 0;
                }
                let from = self.ropr_cursor.max(ops.board().cum_ack());
                let next = ops.board().uncovered_in(from, self.batch_segs, 1);
                match next.first() {
                    Some(&seg) => {
                        ops.send_segment(seg, SendClass::Proactive);
                        self.ropr_cursor = seg + 1;
                        self.ropr_cursor < self.batch_segs
                    }
                    None => false,
                }
            }
            _ => false,
        }
    }

    /// Enter the TCP fallback (§3.3) once the paced prefix is delivered and
    /// more data remains.
    fn maybe_enter_fallback(&mut self, ops: &mut Ops<'_, '_>) -> bool {
        if self.phase != HbPhase::Ropr
            || (self.batch_segs as u64) >= ops.total_segs() as u64
            || ops.board().cum_ack() < self.batch_segs
        {
            return false;
        }
        // Estimate the delivery rate s from ACK arrivals since pacing began.
        let elapsed = ops.now().saturating_since(self.pacing_started);
        let acked = ops.board().acked_bytes();
        let srtt = ops.rtt().srtt().unwrap_or(SimDuration::from_millis(100));
        let cwnd = if elapsed.is_zero() {
            2 * MSS as u64
        } else {
            // s * RTT, in bytes.
            ((acked as f64 / elapsed.as_secs_f64()) * srtt.as_secs_f64()) as u64
        };
        let reno = self.reactive.get_or_insert_with(|| {
            RenoEngine::new(RenoConfig {
                icw_segments: 2,
                ..Default::default()
            })
        });
        reno.set_cwnd(cwnd.clamp(2 * MSS as u64, ops.window_bytes() as u64));
        // Congestion avoidance from the start: ssthresh = cwnd.
        reno.set_ssthresh(reno.cwnd());
        reno.set_new_data_limit(None);
        self.phase = HbPhase::Fallback;
        reno.fill(ops, SendClass::FastRetx);
        true
    }
}

impl Default for Halfback {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for Halfback {
    fn name(&self) -> &'static str {
        self.cfg.display_name()
    }

    fn on_established(&mut self, ops: &mut Ops<'_, '_>) {
        let window = ops.window_bytes() as u64;
        let threshold = self.cfg.pacing_threshold.unwrap_or(window);
        let batch_bytes = ops.flow_bytes().min(window).min(threshold);
        self.batch_segs = segment_count(batch_bytes).min(ops.total_segs()).max(1);
        self.pacing_started = ops.now();
        let rtt = ops.rtt().latest().unwrap_or(SimDuration::from_millis(100));

        // Optional §4.2.4 refinement: immediate head-start burst.
        let burst = self.cfg.burst_first_segments.min(self.batch_segs);
        for seg in 0..burst {
            ops.send_segment(seg, SendClass::New);
        }
        self.next_paced = burst;

        if self.next_paced >= self.batch_segs {
            self.enter_ropr(ops);
            return;
        }
        // Pace the remaining batch evenly across one RTT: first paced
        // segment now, the rest on ticks.
        let remaining = self.batch_segs - self.next_paced;
        let interval = rtt / remaining.max(1) as u64;
        ops.send_segment(self.next_paced, SendClass::New);
        self.next_paced += 1;
        if self.next_paced >= self.batch_segs {
            self.enter_ropr(ops);
        } else {
            ops.start_pacing(interval);
        }
    }

    fn on_pace_tick(&mut self, ops: &mut Ops<'_, '_>) -> PaceAction {
        if self.phase != HbPhase::Pacing || self.next_paced >= self.batch_segs {
            return PaceAction::Stop;
        }
        ops.send_segment(self.next_paced, SendClass::New);
        self.next_paced += 1;
        if self.next_paced >= self.batch_segs {
            self.enter_ropr(ops);
            PaceAction::Stop
        } else {
            PaceAction::Continue
        }
    }

    fn on_ack(&mut self, ops: &mut Ops<'_, '_>, _ack: &AckHeader, outcome: &AckOutcome) {
        match self.phase {
            HbPhase::Pacing => {
                // §3.2: ACKs received before all new packets are paced out
                // do not trigger proactive retransmission.
            }
            HbPhase::Ropr => {
                if self.maybe_enter_fallback(ops) {
                    return;
                }
                // Normal TCP machinery runs in parallel (window-governed
                // reactive retransmission with proper post-loss growth).
                let before = ops.counters().normal_retx;
                if let Some(r) = self.reactive.as_mut() {
                    r.on_ack(ops, outcome);
                }
                let sent_reactive = ops.counters().normal_retx > before;
                if self.skip_next_ropr {
                    // This ACK's budget went to a reactive retransmission.
                    self.skip_next_ropr = false;
                    return;
                }
                // Spend this ACK on ROPR only if the reactive engine left
                // it unused — Halfback sends at most ~one packet per ACK.
                if !sent_reactive {
                    self.ropr_step(ops);
                }
            }
            HbPhase::Fallback => {
                if let Some(f) = self.reactive.as_mut() {
                    f.on_ack(ops, outcome);
                }
            }
        }
    }

    fn on_loss_detected(&mut self, ops: &mut Ops<'_, '_>, newly_lost: &[SegId]) {
        match self.phase {
            HbPhase::Pacing => {
                // Stay paced; the scoreboard remembers, recovery starts
                // with the first post-pacing ACK.
            }
            HbPhase::Ropr => {
                // Normal TCP loss response (window-halving recovery); the
                // current ACK's ROPR budget is consumed by it.
                if let Some(r) = self.reactive.as_mut() {
                    r.on_loss(ops, newly_lost);
                    self.skip_next_ropr = true;
                }
            }
            HbPhase::Fallback => {
                if let Some(f) = self.reactive.as_mut() {
                    f.on_loss(ops, newly_lost);
                }
            }
        }
    }

    fn on_rto(&mut self, ops: &mut Ops<'_, '_>) {
        match self.phase {
            HbPhase::Pacing => {
                // Timeout mid-pacing (pathological): abandon pacing, go
                // reactive.
                ops.stop_pacing();
                self.enter_ropr(ops);
                self.ropr_done = true; // no proactive copies after an RTO
                if let Some(r) = self.reactive.as_mut() {
                    r.on_rto(ops);
                }
            }
            HbPhase::Ropr => {
                self.ropr_done = true;
                match self.reactive.as_mut() {
                    Some(r) => r.on_rto(ops),
                    None => {
                        if let Some(seg) = ops.board().first_uncovered() {
                            ops.send_segment(seg, SendClass::RtoRetx);
                        }
                    }
                }
            }
            HbPhase::Fallback => {
                if let Some(f) = self.reactive.as_mut() {
                    f.on_rto(ops);
                }
            }
        }
    }

    fn save_state(&self, w: &mut netsim::snap::SnapWriter) {
        // The pacing threshold is serialized because AdaptiveHalfback
        // derives it per flow from its rate cache; the rest of the config
        // is identical on every sender of a scheme and comes back from the
        // restore-side strategy factory.
        w.bool(self.cfg.pacing_threshold.is_some());
        w.u64(self.cfg.pacing_threshold.unwrap_or(0));
        w.u8(match self.phase {
            HbPhase::Pacing => 0,
            HbPhase::Ropr => 1,
            HbPhase::Fallback => 2,
        });
        w.u32(self.batch_segs);
        w.u32(self.next_paced);
        w.u32(self.ropr_cursor);
        w.bool(self.ropr_done);
        w.u32(self.ratio_acc);
        w.bool(self.skip_next_ropr);
        w.u64(self.pacing_started.as_nanos());
        w.bool(self.reactive.is_some());
        if let Some(r) = &self.reactive {
            r.save(w);
        }
    }

    fn load_state(
        &mut self,
        r: &mut netsim::snap::SnapReader<'_>,
    ) -> Result<(), netsim::snap::SnapError> {
        let has_threshold = r.bool()?;
        let threshold = r.u64()?;
        self.cfg.pacing_threshold = has_threshold.then_some(threshold);
        self.phase = match r.u8()? {
            0 => HbPhase::Pacing,
            1 => HbPhase::Ropr,
            2 => HbPhase::Fallback,
            tag => return Err(netsim::snap::SnapError::Tag { ty: "HbPhase", tag }),
        };
        self.batch_segs = r.u32()?;
        self.next_paced = r.u32()?;
        self.ropr_cursor = r.u32()?;
        self.ropr_done = r.bool()?;
        self.ratio_acc = r.u32()?;
        self.skip_next_ropr = r.bool()?;
        self.pacing_started = SimTime::from_nanos(r.u64()?);
        self.reactive = if r.bool()? {
            Some(RenoEngine::load(r)?)
        } else {
            None
        };
        Ok(())
    }
}

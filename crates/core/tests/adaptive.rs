//! The §3.1 adaptive-threshold extension: on a slow path, history makes
//! the startup phase less aggressive.

use halfback::{rate_cache, AdaptiveHalfback, Halfback};
use netsim::topology::{build_path, PathSpec};
use netsim::{FlowId, Rate, SimDuration, SimTime};
use transport::strategy::Strategy;
use transport::{FlowRecord, Host, TransportSim};

/// Sequential flows on one slow path (5 Mbps, 60 ms: the 141 KB default
/// threshold paces at ~19 Mbps, nearly 4x the line rate).
fn run_sequence(
    mk: &mut dyn FnMut((netsim::NodeId, netsim::NodeId)) -> Box<dyn Strategy>,
    n: usize,
) -> Vec<FlowRecord> {
    let spec = PathSpec::clean(Rate::from_mbps(5), SimDuration::from_millis(60));
    let mut sim = TransportSim::new(99);
    let net = build_path(&mut sim, &spec, |_| Box::new(Host::new()));
    sim.with_node_mut::<Host, _>(net.sender, |h, _| h.wire(net.sender, net.forward));
    sim.with_node_mut::<Host, _>(net.receiver, |h, _| h.wire(net.receiver, net.reverse));
    for i in 0..n {
        let strategy = mk((net.sender, net.receiver));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(3 * i as u64));
        sim.with_node_mut::<Host, _>(net.sender, |h, core| {
            h.start_flow(core, FlowId(i as u64 + 1), net.receiver, 100_000, strategy)
        });
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(3 * i as u64 + 3));
    }
    sim.run_to_completion(10_000_000);
    sim.node_as::<Host>(net.sender)
        .unwrap()
        .completed()
        .to_vec()
}

#[test]
fn adaptive_threshold_learns_the_slow_path() {
    let cache = rate_cache();
    let mut mk_adaptive =
        |key| Box::new(AdaptiveHalfback::new(cache.clone(), key)) as Box<dyn Strategy>;
    let adaptive = run_sequence(&mut mk_adaptive, 3);
    let mut mk_plain = |_| Box::new(Halfback::new()) as Box<dyn Strategy>;
    let plain = run_sequence(&mut mk_plain, 3);

    assert_eq!(adaptive.len(), 3);
    assert_eq!(plain.len(), 3);
    // First contact behaves like plain Halfback.
    assert_eq!(
        adaptive[0].counters.data_packets_sent,
        plain[0].counters.data_packets_sent
    );

    // Learned flows pace within the observed rate: far fewer total packets
    // (the plain sender blasts 141 KB-threshold pacing into a 5 Mbps line,
    // losing and re-sending a large fraction every time).
    let learned = &adaptive[2];
    let naive = &plain[2];
    assert!(
        learned.counters.data_packets_sent < naive.counters.data_packets_sent,
        "adaptive sent {} packets vs plain {}",
        learned.counters.data_packets_sent,
        naive.counters.data_packets_sent
    );
    // The trade: it may pay some latency for that efficiency (the paced
    // prefix shrinks to rate x RTT and the rest rides the TCP fallback),
    // but it must stay in the same regime, not regress to slow-start time.
    assert!(
        learned.fct.as_millis_f64() <= naive.fct.as_millis_f64() * 2.5,
        "adaptive {} vs plain {}",
        learned.fct,
        naive.fct
    );
    // Efficiency is the point: drastically less retransmitted waste.
    let waste = |r: &FlowRecord| r.counters.normal_retx + r.counters.proactive_retx;
    assert!(
        waste(learned) < waste(naive) / 2,
        "adaptive waste {} vs plain {}",
        waste(learned),
        waste(naive)
    );
    // The cache really holds a rate near the line rate.
    let rate = *cache.borrow().values().next().expect("rate recorded");
    let mbps = rate.as_mbps_f64();
    assert!((2.0..=6.0).contains(&mbps), "learned rate {mbps} Mbps");
}

#[test]
fn adaptive_matches_plain_on_first_contact() {
    // With an empty cache the adaptive sender is byte-for-byte the paper's
    // Halfback.
    let cache = rate_cache();
    let mut mk_adaptive =
        |key| Box::new(AdaptiveHalfback::new(cache.clone(), key)) as Box<dyn Strategy>;
    let a = run_sequence(&mut mk_adaptive, 1);
    let mut mk_plain = |_| Box::new(Halfback::new()) as Box<dyn Strategy>;
    let b = run_sequence(&mut mk_plain, 1);
    assert_eq!(a[0].fct, b[0].fct);
    assert_eq!(
        a[0].counters.data_packets_sent,
        b[0].counters.data_packets_sent
    );
    assert_eq!(a[0].counters.proactive_retx, b[0].counters.proactive_retx);
}

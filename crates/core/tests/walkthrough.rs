//! The paper's Fig. 3 walkthrough and core Halfback behaviour, end to end.

use halfback::{Halfback, HalfbackConfig};
use netsim::loss::LossModel;
use netsim::topology::{build_dumbbell, build_path, DumbbellSpec, PathSpec};
use netsim::{FlowId, Rate, SimDuration};
use transport::sender::FlowRecord;
use transport::strategy::Strategy;
use transport::wire::MSS;
use transport::{Host, TransportSim};

fn run_dumbbell(strategy: Box<dyn Strategy>, bytes: u64) -> FlowRecord {
    let mut sim = TransportSim::new(3);
    let net = build_dumbbell(&mut sim, &DumbbellSpec::emulab(1), |_, _| {
        Box::new(Host::new())
    });
    sim.with_node_mut::<Host, _>(net.left_hosts[0], |h, _| {
        h.wire(net.left_hosts[0], net.left_egress[0])
    });
    sim.with_node_mut::<Host, _>(net.right_hosts[0], |h, _| {
        h.wire(net.right_hosts[0], net.right_egress[0])
    });
    sim.with_node_mut::<Host, _>(net.left_hosts[0], |h, core| {
        h.start_flow(core, FlowId(1), net.right_hosts[0], bytes, strategy)
    });
    sim.run_to_completion(50_000_000);
    let host = sim.node_as::<Host>(net.left_hosts[0]).unwrap();
    assert_eq!(host.completed().len(), 1, "flow did not complete");
    host.completed()[0].clone()
}

/// Build the Fig. 3 scenario: a 10-segment flow on a clean fast path where
/// exactly one data packet (the paper drops packet 9) is lost on the wire.
fn fig3_run(drop_ordinal: Option<u64>, cfg: HalfbackConfig) -> (FlowRecord, u64) {
    let mut spec = PathSpec::clean(Rate::from_mbps(100), SimDuration::from_millis(60));
    if let Some(ord) = drop_ordinal {
        // Forward-link ordinals: packet 1 is the SYN, data segment k is
        // ordinal k+1.
        spec.loss = LossModel::DropList {
            ordinals: vec![ord],
        };
    }
    let mut sim = TransportSim::new(9);
    let net = build_path(&mut sim, &spec, |_| Box::new(Host::new()));
    sim.with_node_mut::<Host, _>(net.sender, |h, _| h.wire(net.sender, net.forward));
    sim.with_node_mut::<Host, _>(net.receiver, |h, _| h.wire(net.receiver, net.reverse));
    sim.with_node_mut::<Host, _>(net.sender, |h, core| {
        h.start_flow(
            core,
            FlowId(1),
            net.receiver,
            10 * MSS as u64,
            Box::new(Halfback::with_config(cfg)),
        )
    });
    sim.run_to_completion(1_000_000);
    let host = sim.node_as::<Host>(net.sender).unwrap();
    assert_eq!(host.completed().len(), 1, "flow did not complete");
    let rec = host.completed()[0].clone();
    let dup = sim
        .node_as::<Host>(net.receiver)
        .unwrap()
        .receiver(FlowId(1))
        .unwrap()
        .dup_segments;
    (rec, dup)
}

#[test]
fn fig3_loss_free_ropr_retransmits_about_half() {
    let (rec, _) = fig3_run(None, HalfbackConfig::paper());
    // 10 segments; ACKs 1..=5 clock retransmissions of 10,9,8,7,6, then
    // ACK 6 finds nothing uncovered above the cum point: 5 proactive copies.
    assert_eq!(
        rec.counters.proactive_retx, 5,
        "ROPR should cover half the flow"
    );
    assert_eq!(rec.counters.normal_retx, 0);
    assert_eq!(rec.counters.rto_events, 0);
    // FCT ~ handshake + pacing RTT + final ACK half-RTT: ~2.5-3 RTT.
    let fct = rec.fct.as_millis_f64();
    assert!(fct > 140.0 && fct < 200.0, "FCT {fct}ms");
}

#[test]
fn fig3_tail_loss_recovered_by_ropr_without_timeout() {
    // Drop data segment index 8 ("packet 9"): forward-link ordinal 10.
    let (rec, _) = fig3_run(Some(10), HalfbackConfig::paper());
    assert_eq!(
        rec.counters.rto_events, 0,
        "ROPR must mask tail loss without RTO"
    );
    // The proactive copy of segment 8 repairs the hole; a normal (reactive)
    // retransmission may or may not fire depending on SACK timing, but the
    // flow must finish in ROPR time, not RTO time.
    let fct = rec.fct.as_millis_f64();
    assert!(fct < 260.0, "tail loss must not cost an RTO; FCT {fct}ms");
}

#[test]
fn fig3_tail_loss_without_ropr_needs_timeout() {
    // Same drop, ROPR disabled: nothing repairs the tail until the RTO.
    let (rec, _) = fig3_run(Some(10), HalfbackConfig::pacing_only());
    assert!(
        rec.counters.rto_events >= 1,
        "without ROPR, tail loss needs an RTO"
    );
    let fct = rec.fct.as_millis_f64();
    assert!(fct > 260.0, "RTO recovery cannot be this fast: {fct}ms");
}

#[test]
fn ropr_burst_variant_bursts_everything_at_once() {
    let (rec, _) = fig3_run(None, HalfbackConfig::burst());
    // The first post-pacing ACK bursts copies of all 9 uncovered segments
    // (segment 0 is already cum-ACKed by then).
    assert!(
        rec.counters.proactive_retx >= 8,
        "burst variant must retransmit nearly the whole flow, got {}",
        rec.counters.proactive_retx
    );
}

#[test]
fn ropr_forward_variant_retransmits_from_the_front() {
    let (rec, dup) = fig3_run(None, HalfbackConfig::forward());
    // Forward ROPR wastes its budget on the front half, which the ACK
    // stream is about to cover anyway; the receiver sees those as dups.
    assert!(rec.counters.proactive_retx >= 4);
    assert!(dup >= 4, "forward copies duplicate already-delivered data");
}

#[test]
fn tuned_ratio_sends_fewer_proactive_copies() {
    let (paper, _) = fig3_run(None, HalfbackConfig::paper());
    let (tuned, _) = fig3_run(None, HalfbackConfig::with_ratio(1, 2));
    assert!(
        tuned.counters.proactive_retx < paper.counters.proactive_retx,
        "1-per-2-ACKs must send fewer copies ({} vs {})",
        tuned.counters.proactive_retx,
        paper.counters.proactive_retx
    );
}

#[test]
fn halfback_matches_jumpstart_time_on_clean_dumbbell() {
    use baselines::JumpStart;
    let hb = run_dumbbell(Box::new(Halfback::new()), 100_000);
    let js = run_dumbbell(Box::new(JumpStart::new()), 100_000);
    // Without loss the two share the startup phase (§4.2.1: same FCT for
    // the 75% loss-free pairs).
    let diff = (hb.fct.as_millis_f64() - js.fct.as_millis_f64()).abs();
    assert!(diff < 15.0, "Halfback {} vs JumpStart {}", hb.fct, js.fct);
}

#[test]
fn halfback_retransmits_about_half_of_100kb() {
    let rec = run_dumbbell(Box::new(Halfback::new()), 100_000);
    let total = 69u64; // segments in 100 KB
    let pro = rec.counters.proactive_retx;
    assert!(
        pro >= total * 2 / 5 && pro <= total * 3 / 5,
        "ROPR should cover ~50% of the flow; covered {pro}/{total}"
    );
}

#[test]
fn burst_first_refinement_speeds_tiny_flows() {
    // §4.2.4: pacing delays very small flows; a 10-segment head start fixes
    // that.
    let plain = run_dumbbell(Box::new(Halfback::new()), 8 * MSS as u64);
    let burst = run_dumbbell(
        Box::new(Halfback::with_config(HalfbackConfig::burst_first())),
        8 * MSS as u64,
    );
    assert!(
        burst.fct.as_millis_f64() < plain.fct.as_millis_f64() - 20.0,
        "burst-first {} should beat paced {} for tiny flows",
        burst.fct,
        plain.fct
    );
}

#[test]
fn long_flow_falls_back_to_tcp() {
    // 1 MB flow with a 141 KB threshold: the paced prefix covers ~97
    // segments, the rest must go through the fallback engine.
    let rec = run_dumbbell(Box::new(Halfback::new()), 1_000_000);
    assert_eq!(rec.bytes, 1_000_000);
    // Fallback throughput is bounded by the 15 Mbps bottleneck.
    let floor_ms = (1_000_000.0 * 8.0) / 15e6 * 1000.0;
    assert!(
        rec.fct.as_millis_f64() > floor_ms,
        "faster than the line rate?"
    );
    // The aggressive phase must not have proactively retransmitted beyond
    // the threshold prefix.
    assert!(
        rec.counters.proactive_retx <= 97,
        "ROPR must stop at the threshold"
    );
    // And the fallback should be efficient: no timeouts on a clean path.
    assert_eq!(rec.counters.rto_events, 0);
}

#[test]
fn deterministic() {
    let a = run_dumbbell(Box::new(Halfback::new()), 100_000);
    let b = run_dumbbell(Box::new(Halfback::new()), 100_000);
    assert_eq!(a.fct, b.fct);
    assert_eq!(a.counters.proactive_retx, b.counters.proactive_retx);
}

//! Property-style tests of Halfback end to end: under *arbitrary*
//! deterministic drop patterns the flow must always complete, ROPR must
//! stay within its budget, and runs must be reproducible. Cases are drawn
//! from a seeded [`SimRng`] so every run checks the same corpus.

use halfback::{Halfback, HalfbackConfig};
use netsim::loss::LossModel;
use netsim::rng::SimRng;
use netsim::topology::{build_path, PathSpec};
use netsim::{FlowId, Rate, SimDuration};
use transport::wire::{segment_count, MSS};
use transport::{Host, TransportSim};

/// Run one Halfback flow of `segs` segments over a clean 100 Mbps / 60 ms
/// path with the given forward-link drop ordinals.
fn run_with_drops(segs: u32, drops: Vec<u64>, cfg: HalfbackConfig) -> transport::FlowRecord {
    let mut spec = PathSpec::clean(Rate::from_mbps(100), SimDuration::from_millis(60));
    let mut ordinals = drops;
    ordinals.sort_unstable();
    ordinals.dedup();
    spec.loss = LossModel::DropList { ordinals };
    let mut sim = TransportSim::new(4242);
    let net = build_path(&mut sim, &spec, |_| Box::new(Host::new()));
    sim.with_node_mut::<Host, _>(net.sender, |h, _| h.wire(net.sender, net.forward));
    sim.with_node_mut::<Host, _>(net.receiver, |h, _| h.wire(net.receiver, net.reverse));
    sim.with_node_mut::<Host, _>(net.sender, |h, core| {
        h.start_flow(
            core,
            FlowId(1),
            net.receiver,
            segs as u64 * MSS as u64,
            Box::new(Halfback::with_config(cfg)),
        )
    });
    sim.run_to_completion(50_000_000);
    let host = sim.node_as::<Host>(net.sender).unwrap();
    assert_eq!(host.completed().len(), 1, "flow must complete");
    host.completed()[0].clone()
}

fn random_drops(rng: &mut SimRng, max_count: usize, ordinal_range: u64) -> Vec<u64> {
    let n = rng.index(max_count);
    (0..n)
        .map(|_| 1 + rng.index(ordinal_range as usize - 1) as u64)
        .collect()
}

/// Any pattern of forward-path drops: the flow completes and ROPR's
/// proactive budget never exceeds the paced batch.
#[test]
fn completes_under_arbitrary_drops() {
    let mut rng = SimRng::new(0xD201);
    for case in 0..64 {
        let segs = 2 + rng.index(58) as u32;
        let drops = random_drops(&mut rng, 25, 200);
        let rec = run_with_drops(segs, drops.clone(), HalfbackConfig::paper());
        let batch = segment_count(rec.bytes).min(segs);
        assert!(
            rec.counters.proactive_retx <= batch as u64,
            "case {case} (segs {segs}, drops {drops:?}): ROPR sent {} proactive copies \
             for a {}-segment batch",
            rec.counters.proactive_retx,
            batch
        );
        assert_eq!(rec.bytes, segs as u64 * MSS as u64, "case {case}");
    }
}

/// Loss-free runs: ROPR covers about half the flow (the meeting-point
/// property that names the scheme), within rounding.
#[test]
fn lossfree_ropr_covers_half() {
    let mut rng = SimRng::new(0x4A1F);
    for case in 0..64 {
        let segs = 4 + rng.index(86) as u32;
        let rec = run_with_drops(segs, vec![], HalfbackConfig::paper());
        let pro = rec.counters.proactive_retx as i64;
        let half = (segs / 2) as i64;
        assert!(
            (pro - half).abs() <= 1,
            "case {case}: {segs} segments: {pro} proactive copies, expected ~{half}"
        );
        assert_eq!(rec.counters.normal_retx, 0, "case {case}");
        assert_eq!(rec.counters.rto_events, 0, "case {case}");
    }
}

/// The tunable ratio extension stays within its advertised budget:
/// (sends per acks) bounds total proactive copies.
#[test]
fn tuned_ratio_budget() {
    let mut rng = SimRng::new(0x7A710);
    for case in 0..64 {
        let segs = 8 + rng.index(52) as u32;
        let acks_per_send = 2 + rng.index(3) as u32;
        let cfg = HalfbackConfig::with_ratio(1, acks_per_send);
        let rec = run_with_drops(segs, vec![], cfg);
        let bound = (segs / acks_per_send + 2) as u64;
        assert!(
            rec.counters.proactive_retx <= bound,
            "case {case}: ratio 1/{acks_per_send}: {} copies > bound {bound}",
            rec.counters.proactive_retx
        );
    }
}

/// Ablation variants also always complete under drops.
#[test]
fn variants_complete_under_drops() {
    let mut rng = SimRng::new(0xAB1A);
    for case in 0..64 {
        let segs = 2 + rng.index(38) as u32;
        let drops = random_drops(&mut rng, 12, 120);
        let cfg = match rng.index(3) {
            0 => HalfbackConfig::forward(),
            1 => HalfbackConfig::burst(),
            _ => HalfbackConfig::burst_first(),
        };
        let rec = run_with_drops(segs, drops.clone(), cfg);
        assert_eq!(
            rec.bytes,
            segs as u64 * MSS as u64,
            "case {case} (segs {segs}, drops {drops:?})"
        );
    }
}

/// Determinism: identical drop patterns give identical outcomes.
#[test]
fn deterministic_under_drops() {
    let mut rng = SimRng::new(0xDE7E);
    for case in 0..64 {
        let segs = 2 + rng.index(38) as u32;
        let drops = random_drops(&mut rng, 10, 120);
        let a = run_with_drops(segs, drops.clone(), HalfbackConfig::paper());
        let b = run_with_drops(segs, drops, HalfbackConfig::paper());
        assert_eq!(a.fct, b.fct, "case {case}");
        assert_eq!(
            a.counters.data_packets_sent, b.counters.data_packets_sent,
            "case {case}"
        );
        assert_eq!(
            a.counters.proactive_retx, b.counters.proactive_retx,
            "case {case}"
        );
    }
}

//! Property-based tests of Halfback end to end: under *arbitrary*
//! deterministic drop patterns the flow must always complete, ROPR must
//! stay within its budget, and runs must be reproducible.

use halfback::{Halfback, HalfbackConfig};
use netsim::loss::LossModel;
use netsim::topology::{build_path, PathSpec};
use netsim::{FlowId, Rate, SimDuration};
use proptest::prelude::*;
use transport::wire::{segment_count, MSS};
use transport::{Host, TransportSim};

/// Run one Halfback flow of `segs` segments over a clean 100 Mbps / 60 ms
/// path with the given forward-link drop ordinals.
fn run_with_drops(segs: u32, drops: Vec<u64>, cfg: HalfbackConfig) -> transport::FlowRecord {
    let mut spec = PathSpec::clean(Rate::from_mbps(100), SimDuration::from_millis(60));
    let mut ordinals = drops;
    ordinals.sort_unstable();
    ordinals.dedup();
    spec.loss = LossModel::DropList { ordinals };
    let mut sim = TransportSim::new(4242);
    let net = build_path(&mut sim, &spec, |_| Box::new(Host::new()));
    sim.with_node_mut::<Host, _>(net.sender, |h, _| h.wire(net.sender, net.forward));
    sim.with_node_mut::<Host, _>(net.receiver, |h, _| h.wire(net.receiver, net.reverse));
    sim.with_node_mut::<Host, _>(net.sender, |h, core| {
        h.start_flow(
            core,
            FlowId(1),
            net.receiver,
            segs as u64 * MSS as u64,
            Box::new(Halfback::with_config(cfg)),
        )
    });
    sim.run_to_completion(50_000_000);
    let host = sim.node_as::<Host>(net.sender).unwrap();
    assert_eq!(host.completed().len(), 1, "flow must complete");
    host.completed()[0].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any pattern of forward-path drops: the flow completes and ROPR's
    /// proactive budget never exceeds the paced batch.
    #[test]
    fn completes_under_arbitrary_drops(
        segs in 2u32..60,
        drops in prop::collection::vec(1u64..200, 0..25),
    ) {
        let rec = run_with_drops(segs, drops, HalfbackConfig::paper());
        let batch = segment_count(rec.bytes).min(segs);
        prop_assert!(
            rec.counters.proactive_retx <= batch as u64,
            "ROPR sent {} proactive copies for a {}-segment batch",
            rec.counters.proactive_retx,
            batch
        );
        prop_assert_eq!(rec.bytes, segs as u64 * MSS as u64);
    }

    /// Loss-free runs: ROPR covers about half the flow (the meeting-point
    /// property that names the scheme), within rounding.
    #[test]
    fn lossfree_ropr_covers_half(segs in 4u32..90) {
        let rec = run_with_drops(segs, vec![], HalfbackConfig::paper());
        let pro = rec.counters.proactive_retx as i64;
        let half = (segs / 2) as i64;
        prop_assert!(
            (pro - half).abs() <= 1,
            "{} segments: {} proactive copies, expected ~{}",
            segs, pro, half
        );
        prop_assert_eq!(rec.counters.normal_retx, 0);
        prop_assert_eq!(rec.counters.rto_events, 0);
    }

    /// The tunable ratio extension stays within its advertised budget:
    /// (sends per acks) bounds total proactive copies.
    #[test]
    fn tuned_ratio_budget(segs in 8u32..60, acks_per_send in 2u32..5) {
        let cfg = HalfbackConfig::with_ratio(1, acks_per_send);
        let rec = run_with_drops(segs, vec![], cfg);
        let bound = (segs / acks_per_send + 2) as u64;
        prop_assert!(
            rec.counters.proactive_retx <= bound,
            "ratio 1/{}: {} copies > bound {}",
            acks_per_send, rec.counters.proactive_retx, bound
        );
    }

    /// Ablation variants also always complete under drops.
    #[test]
    fn variants_complete_under_drops(
        segs in 2u32..40,
        drops in prop::collection::vec(1u64..120, 0..12),
        which in 0usize..3,
    ) {
        let cfg = match which {
            0 => HalfbackConfig::forward(),
            1 => HalfbackConfig::burst(),
            _ => HalfbackConfig::burst_first(),
        };
        let rec = run_with_drops(segs, drops, cfg);
        prop_assert_eq!(rec.bytes, segs as u64 * MSS as u64);
    }

    /// Determinism: identical drop patterns give identical outcomes.
    #[test]
    fn deterministic_under_drops(
        segs in 2u32..40,
        drops in prop::collection::vec(1u64..120, 0..10),
    ) {
        let a = run_with_drops(segs, drops.clone(), HalfbackConfig::paper());
        let b = run_with_drops(segs, drops, HalfbackConfig::paper());
        prop_assert_eq!(a.fct, b.fct);
        prop_assert_eq!(a.counters.data_packets_sent, b.counters.data_packets_sent);
        prop_assert_eq!(a.counters.proactive_retx, b.counters.proactive_retx);
    }
}

//! Reactive TCP (\[18\], §2.2): standard TCP plus a *probe timeout* (PTO)
//! that retransmits the last unacknowledged segment well before the RTO
//! would fire, converting tail loss into SACK-recoverable loss.
//!
//! PTO = max(2 × SRTT, 10 ms), re-armed whenever new data is sent or new
//! progress is made, matching the TLP design in \[18\].

use netsim::SimDuration;
use transport::reno::{RenoConfig, RenoEngine};
use transport::scoreboard::AckOutcome;
use transport::sender::Ops;
use transport::strategy::Strategy;
use transport::wire::{AckHeader, SegId, SendClass};

/// Reactive TCP: NewReno + tail loss probe.
#[derive(Debug)]
pub struct ReactiveTcp {
    reno: RenoEngine,
    probes_sent: u32,
    max_probes: u32,
}

impl ReactiveTcp {
    /// Reactive TCP with the default 2-segment initial window.
    pub fn new() -> Self {
        ReactiveTcp {
            reno: RenoEngine::new(RenoConfig {
                icw_segments: 2,
                ..Default::default()
            }),
            probes_sent: 0,
            max_probes: 6,
        }
    }

    fn pto_delay(ops: &Ops<'_, '_>) -> SimDuration {
        let srtt = ops.rtt().srtt().unwrap_or(SimDuration::from_millis(100));
        srtt.saturating_mul(2).max(SimDuration::from_millis(10))
    }

    fn rearm(&self, ops: &mut Ops<'_, '_>) {
        if ops.board().pipe_bytes() > 0 && self.probes_sent < self.max_probes {
            ops.arm_pto(Self::pto_delay(ops));
        } else {
            ops.cancel_pto();
        }
    }
}

impl Default for ReactiveTcp {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for ReactiveTcp {
    fn name(&self) -> &'static str {
        "Reactive"
    }

    fn on_established(&mut self, ops: &mut Ops<'_, '_>) {
        self.reno.on_established(ops);
        self.rearm(ops);
    }

    fn on_ack(&mut self, ops: &mut Ops<'_, '_>, _ack: &AckHeader, outcome: &AckOutcome) {
        self.reno.on_ack(ops, outcome);
        if outcome.cum_advanced {
            self.probes_sent = 0;
        }
        self.rearm(ops);
    }

    fn on_loss_detected(&mut self, ops: &mut Ops<'_, '_>, newly_lost: &[SegId]) {
        self.reno.on_loss(ops, newly_lost);
    }

    fn on_rto(&mut self, ops: &mut Ops<'_, '_>) {
        self.probes_sent = 0;
        self.reno.on_rto(ops);
        self.rearm(ops);
    }

    fn on_pto(&mut self, ops: &mut Ops<'_, '_>) {
        // Retransmit the highest unacknowledged segment as a probe; its ACK
        // (or the SACK it provokes) restores the ACK clock without waiting
        // for the full RTO.
        if let Some(seg) = ops.board().highest_uncovered_below(ops.board().high_sent()) {
            ops.send_segment(seg, SendClass::ProbeRetx);
            self.probes_sent += 1;
        }
        self.rearm(ops);
    }

    fn save_state(&self, w: &mut netsim::snap::SnapWriter) {
        self.reno.save(w);
        w.u32(self.probes_sent);
        w.u32(self.max_probes);
    }

    fn load_state(
        &mut self,
        r: &mut netsim::snap::SnapReader<'_>,
    ) -> Result<(), netsim::snap::SnapError> {
        self.reno = RenoEngine::load(r)?;
        self.probes_sent = r.u32()?;
        self.max_probes = r.u32()?;
        Ok(())
    }
}

//! PCP (\[7\], §2.2): probe-then-send endpoint congestion control.
//!
//! The sender emits short paced packet trains and inspects the one-way
//! delay trend across each train (echoed by the receiver). A flat trend
//! means the probed rate fits in the available bandwidth, so the rate is
//! doubled and probed again; a rising trend means queueing, so the sender
//! backs off, waits, and re-probes. Once a probe fails (or the rate covers
//! the whole flow in one RTT), data is paced at the last successful rate.
//!
//! This reproduces the paper's observations: probing costs whole RTTs
//! before any data moves (long FCT, §2.2), competing TCP keeps the queue
//! growing so PCP stays conservative (§4.2.3), and losses are rare
//! (Fig. 10(b)).

use netsim::{Rate, SimDuration};
use transport::scoreboard::AckOutcome;
use transport::sender::Ops;
use transport::strategy::{PaceAction, Strategy};
use transport::wire::{AckHeader, ProbeAckHeader, SegId, SendClass, MSS};

/// Probe packets per train.
const TRAIN_LEN: u32 = 5;
/// Wire size of one probe packet.
const PROBE_WIRE_BYTES: u32 = 1500;
/// Give up probing upward after this many successful doublings.
const MAX_ROUNDS: u32 = 12;
/// Consecutive failed probes tolerated before settling at the floor rate.
const MAX_FAILURES: u32 = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PcpPhase {
    Probing,
    Sending,
}

/// PCP: packet-train available-bandwidth probing, then rate-paced transfer.
#[derive(Debug)]
pub struct Pcp {
    phase: PcpPhase,
    /// Current probed/sending rate.
    rate: Rate,
    /// Last rate whose probe came back clean.
    last_good: Option<Rate>,
    train_id: u32,
    round: u32,
    failures: u32,
    /// (idx, sent_at_ns, recv_at_ns) for the in-flight train.
    replies: Vec<(u32, u64, u64)>,
    /// Next new segment to pace during Sending.
    next_seg: SegId,
    /// Last time the sending rate was additively increased (ns).
    last_bump_ns: u64,
    /// Last time a loss was detected (ns).
    last_loss_ns: u64,
}

impl Pcp {
    /// A fresh PCP sender.
    pub fn new() -> Self {
        Pcp {
            phase: PcpPhase::Probing,
            rate: Rate::from_bps(1), // set on establishment
            last_good: None,
            train_id: 0,
            round: 0,
            failures: 0,
            replies: Vec::new(),
            next_seg: 0,
            last_bump_ns: 0,
            last_loss_ns: 0,
        }
    }

    fn initial_rate(ops: &Ops<'_, '_>) -> Rate {
        // Two segments per RTT — comparable to TCP's initial window.
        let rtt = ops.rtt().latest().unwrap_or(SimDuration::from_millis(100));
        Rate::for_bytes_in(2 * MSS as u64, rtt).unwrap_or(Rate::from_kbps(100))
    }

    fn probe_spacing(&self) -> SimDuration {
        self.rate.transmission_time(PROBE_WIRE_BYTES)
    }

    fn launch_train(&mut self, ops: &mut Ops<'_, '_>) {
        self.train_id += 1;
        self.replies.clear();
        let spacing = self.probe_spacing();
        // Probes are paced by the chassis pace timer: first probe now, the
        // rest on ticks.
        ops.send_probe(self.train_id, 0, TRAIN_LEN, PROBE_WIRE_BYTES);
        ops.start_pacing(spacing);
        // Train timeout: if replies don't all arrive within 2 RTT + train
        // duration, count the probe as failed.
        let rtt = ops.rtt().srtt().unwrap_or(SimDuration::from_millis(100));
        let timeout = rtt.saturating_mul(2) + spacing.saturating_mul(TRAIN_LEN as u64);
        ops.arm_user_timer(timeout, self.train_id as u64);
    }

    /// Delay trend across the train: rising by more than half a probe
    /// spacing (or 1 ms) counts as queue buildup.
    fn train_congested(&self) -> bool {
        if self.replies.len() < 2 {
            return true; // lost probes = congestion
        }
        let mut sorted = self.replies.clone();
        sorted.sort_by_key(|r| r.0);
        let owd = |r: &(u32, u64, u64)| r.2 as i64 - r.1 as i64;
        let first = owd(&sorted[0]);
        let last = owd(sorted.last().unwrap());
        let rise = last - first;
        let spacing_ns = self.probe_spacing().as_nanos() as i64;
        let threshold = (spacing_ns / 2).max(1_000_000); // >= 1 ms
        rise > threshold || sorted.len() < TRAIN_LEN as usize
    }

    fn on_train_result(&mut self, ops: &mut Ops<'_, '_>, congested: bool) {
        if self.phase != PcpPhase::Probing {
            return;
        }
        let rtt = ops.rtt().srtt().unwrap_or(SimDuration::from_millis(100));
        if congested {
            self.failures += 1;
            if let Some(good) = self.last_good {
                // We already know a working rate; settle there.
                self.rate = good;
                self.start_sending(ops);
            } else if self.failures >= MAX_FAILURES {
                // Never found a clean rate; trickle at the floor.
                self.start_sending(ops);
            } else {
                // Halve and retry after letting the queue drain.
                self.rate = self.rate.mul_f64(0.5).max(Rate::from_kbps(50));
                ops.arm_user_timer(rtt, u64::MAX); // re-probe trigger
            }
        } else {
            self.failures = 0;
            self.last_good = Some(self.rate);
            self.round += 1;
            // If the rate already moves the whole flow in about one RTT, or
            // we've probed enough, start sending.
            let needed = Rate::for_bytes_in(ops.flow_bytes(), rtt)
                .map(Rate::as_bps)
                .unwrap_or(u64::MAX);
            if self.rate.as_bps() >= needed || self.round >= MAX_ROUNDS {
                self.start_sending(ops);
            } else {
                self.rate = Rate::from_bps(self.rate.as_bps() * 2);
                self.launch_train(ops);
            }
        }
    }

    fn start_sending(&mut self, ops: &mut Ops<'_, '_>) {
        self.phase = PcpPhase::Sending;
        // Floor: never settle below a TCP-like two segments per RTT; PCP's
        // control loop (below) additively probes upward from there.
        let rtt = ops.rtt().srtt().unwrap_or(SimDuration::from_millis(100));
        let floor = Rate::for_bytes_in(2 * MSS as u64, rtt).unwrap_or(Rate::from_kbps(100));
        let rate = self.last_good.unwrap_or(self.rate).max(floor);
        self.rate = rate;
        let interval = rate.transmission_time(MSS + 40);
        // First data segment immediately, the rest paced.
        self.send_next(ops);
        ops.start_pacing(interval);
    }

    /// During Sending: lost-marked segments first, then new data.
    fn send_next(&mut self, ops: &mut Ops<'_, '_>) -> bool {
        if let Some(seg) = ops.board().first_lost() {
            ops.send_segment(seg, SendClass::FastRetx);
            return true;
        }
        if let Some(seg) = ops.board().next_unsent() {
            ops.send_segment(seg, SendClass::New);
            self.next_seg = seg + 1;
            return true;
        }
        false
    }
}

impl Default for Pcp {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for Pcp {
    fn name(&self) -> &'static str {
        "PCP"
    }

    fn on_established(&mut self, ops: &mut Ops<'_, '_>) {
        self.rate = Self::initial_rate(ops);
        self.launch_train(ops);
    }

    fn on_pace_tick(&mut self, ops: &mut Ops<'_, '_>) -> PaceAction {
        match self.phase {
            PcpPhase::Probing => {
                // Probes after the first are sent on pace ticks; `next_seg`
                // doubles as the last-sent probe index while probing (it is
                // reset to 0 before Sending begins).
                let idx = self.next_seg + 1;
                if idx < TRAIN_LEN {
                    ops.send_probe(self.train_id, idx, TRAIN_LEN, PROBE_WIRE_BYTES);
                    self.next_seg = idx;
                    PaceAction::Continue
                } else {
                    self.next_seg = 0;
                    PaceAction::Stop
                }
            }
            PcpPhase::Sending => {
                if self.send_next(ops) {
                    PaceAction::Continue
                } else {
                    PaceAction::Stop
                }
            }
        }
    }

    fn on_probe_ack(&mut self, ops: &mut Ops<'_, '_>, pa: &ProbeAckHeader) {
        if self.phase != PcpPhase::Probing || pa.train != self.train_id {
            return;
        }
        self.replies
            .push((pa.idx, pa.sent_at.as_nanos(), pa.recv_at.as_nanos()));
        if self.replies.len() == TRAIN_LEN as usize {
            let congested = self.train_congested();
            ops.stop_pacing();
            self.next_seg = 0;
            self.on_train_result(ops, congested);
        }
    }

    fn on_user_timer(&mut self, ops: &mut Ops<'_, '_>, token: u64) {
        if self.phase != PcpPhase::Probing {
            return;
        }
        if token == u64::MAX {
            // Back-off wait elapsed: probe again at the reduced rate.
            self.launch_train(ops);
        } else if token == self.train_id as u64 && (self.replies.len() as u32) < TRAIN_LEN {
            // Train timed out with missing replies: congested.
            ops.stop_pacing();
            self.next_seg = 0;
            self.on_train_result(ops, true);
        }
    }

    fn on_ack(&mut self, ops: &mut Ops<'_, '_>, _ack: &AckHeader, _outcome: &AckOutcome) {
        if self.phase == PcpPhase::Sending {
            // PCP's steady-state control: additively increase the rate by
            // one segment per RTT while no loss is observed (the emulated
            // rate-based additive increase of the PCP paper), so a train
            // that settled conservatively can climb back up.
            let now = ops.now().as_nanos();
            let srtt = ops
                .rtt()
                .srtt()
                .unwrap_or(SimDuration::from_millis(100))
                .as_nanos();
            if now.saturating_sub(self.last_bump_ns) >= srtt
                && now.saturating_sub(self.last_loss_ns) >= 2 * srtt
            {
                self.last_bump_ns = now;
                let inc = Rate::for_bytes_in(MSS as u64, SimDuration::from_nanos(srtt))
                    .map(Rate::as_bps)
                    .unwrap_or(0);
                self.rate = Rate::from_bps(self.rate.as_bps() + inc);
                ops.set_pace_interval(self.rate.transmission_time(MSS + 40));
            }
        }
        if self.phase == PcpPhase::Sending && !ops.pacing_active() {
            // The pacer stopped (nothing left to send) but an un-ACKed loss
            // may have been marked since; resume if there is work.
            if ops.board().first_lost().is_some() || ops.board().next_unsent().is_some() {
                let interval = self.rate.transmission_time(MSS + 40);
                self.send_next(ops);
                ops.start_pacing(interval);
            }
        }
    }

    fn on_loss_detected(&mut self, ops: &mut Ops<'_, '_>, _newly_lost: &[SegId]) {
        if self.phase == PcpPhase::Sending {
            // Loss at the sending rate: halve it.
            self.last_loss_ns = ops.now().as_nanos();
            self.rate = self.rate.mul_f64(0.5).max(Rate::from_kbps(50));
            ops.set_pace_interval(self.rate.transmission_time(MSS + 40));
        }
    }

    fn on_rto(&mut self, ops: &mut Ops<'_, '_>) {
        match self.phase {
            PcpPhase::Probing => {
                // Nothing outstanding but probes; re-probe conservatively.
                self.rate = self.rate.mul_f64(0.5).max(Rate::from_kbps(50));
                self.launch_train(ops);
            }
            PcpPhase::Sending => {
                self.rate = self.rate.mul_f64(0.5).max(Rate::from_kbps(50));
                if let Some(seg) = ops.board().first_uncovered() {
                    ops.send_segment(seg, SendClass::RtoRetx);
                }
                ops.start_pacing(self.rate.transmission_time(MSS + 40));
            }
        }
    }

    fn save_state(&self, w: &mut netsim::snap::SnapWriter) {
        w.u8(match self.phase {
            PcpPhase::Probing => 0,
            PcpPhase::Sending => 1,
        });
        w.u64(self.rate.as_bps());
        w.bool(self.last_good.is_some());
        w.u64(self.last_good.map_or(0, |g| g.as_bps()));
        w.u32(self.train_id);
        w.u32(self.round);
        w.u32(self.failures);
        w.usize(self.replies.len());
        for &(idx, sent, recv) in &self.replies {
            w.u32(idx);
            w.u64(sent);
            w.u64(recv);
        }
        w.u32(self.next_seg);
        w.u64(self.last_bump_ns);
        w.u64(self.last_loss_ns);
    }

    fn load_state(
        &mut self,
        r: &mut netsim::snap::SnapReader<'_>,
    ) -> Result<(), netsim::snap::SnapError> {
        self.phase = match r.u8()? {
            0 => PcpPhase::Probing,
            1 => PcpPhase::Sending,
            tag => {
                return Err(netsim::snap::SnapError::Tag {
                    ty: "PcpPhase",
                    tag,
                })
            }
        };
        self.rate = Rate::from_bps(r.u64()?);
        let has_good = r.bool()?;
        let good_bps = r.u64()?;
        self.last_good = has_good.then(|| Rate::from_bps(good_bps));
        self.train_id = r.u32()?;
        self.round = r.u32()?;
        self.failures = r.u32()?;
        let n = r.usize()?;
        self.replies.clear();
        self.replies.reserve(n);
        for _ in 0..n {
            let idx = r.u32()?;
            let sent = r.u64()?;
            let recv = r.u64()?;
            self.replies.push((idx, sent, recv));
        }
        self.next_seg = r.u32()?;
        self.last_bump_ns = r.u64()?;
        self.last_loss_ns = r.u64()?;
        Ok(())
    }
}

//! TCP-Cache (§4: "caching older values of the cwnd and ssthresh", in the
//! spirit of TCP Fast Start \[28\]): each completed flow deposits its final
//! congestion state into a per-path cache; the next flow to the same
//! destination starts from the cached window instead of slow-starting.
//!
//! The paper stresses that its experiments give TCP-Cache an unrealistic
//! advantage (one unchanging path, constant utilization), and our harness
//! reproduces exactly that setting; the cache handle is shared across all
//! flows of a scenario.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use netsim::{NodeId, SimTime};
use transport::reno::{RenoConfig, RenoEngine};
use transport::scoreboard::AckOutcome;
use transport::sender::Ops;
use transport::strategy::Strategy;
use transport::wire::{AckHeader, SegId};

/// Cached congestion state for one path.
#[derive(Debug, Clone, Copy)]
pub struct CacheEntry {
    /// Final congestion window of the last flow (bytes).
    pub cwnd: u64,
    /// Final slow-start threshold of the last flow (bytes).
    pub ssthresh: u64,
    /// When the entry was written.
    pub updated_at: SimTime,
}

/// Shared per-path cache: (sender, receiver) -> entry.
pub type PathCache = Rc<RefCell<HashMap<(NodeId, NodeId), CacheEntry>>>;

/// Create an empty path cache for a scenario.
pub fn path_cache() -> PathCache {
    Rc::new(RefCell::new(HashMap::new()))
}

/// Serialize a path cache into the checkpoint codec. The cache is
/// scenario-level state shared across flows — the strategy's own
/// `save_state` covers only per-flow state, so long-running drivers must
/// checkpoint the cache themselves or restored flows lose their warm start.
pub fn save_path_cache(cache: &PathCache, w: &mut netsim::snap::SnapWriter) {
    let cache = cache.borrow();
    let mut keys: Vec<(NodeId, NodeId)> = cache.keys().copied().collect();
    keys.sort_unstable_by_key(|(a, b)| (a.0, b.0));
    w.usize(keys.len());
    for k in keys {
        let e = &cache[&k];
        w.u32(k.0 .0);
        w.u32(k.1 .0);
        w.u64(e.cwnd);
        w.u64(e.ssthresh);
        w.u64(e.updated_at.as_nanos());
    }
}

/// Rebuild a path cache saved by [`save_path_cache`] into `cache`
/// (replacing its contents).
pub fn load_path_cache(
    cache: &PathCache,
    r: &mut netsim::snap::SnapReader<'_>,
) -> Result<(), netsim::snap::SnapError> {
    let mut map = HashMap::new();
    let n = r.usize()?;
    for _ in 0..n {
        let key = (NodeId(r.u32()?), NodeId(r.u32()?));
        map.insert(
            key,
            CacheEntry {
                cwnd: r.u64()?,
                ssthresh: r.u64()?,
                updated_at: SimTime::from_nanos(r.u64()?),
            },
        );
    }
    *cache.borrow_mut() = map;
    Ok(())
}

/// TCP with per-path cwnd/ssthresh caching.
pub struct TcpCache {
    reno: RenoEngine,
    cache: PathCache,
    key: (NodeId, NodeId),
    /// Ignore entries older than this (ns); `None` = never age out.
    max_age_ns: Option<u64>,
}

impl TcpCache {
    /// A TCP-Cache sender for the path identified by `key`, sharing `cache`
    /// with every other flow of the scenario.
    pub fn new(cache: PathCache, key: (NodeId, NodeId)) -> Self {
        TcpCache {
            reno: RenoEngine::new(RenoConfig {
                icw_segments: 2,
                ..Default::default()
            }),
            cache,
            key,
            max_age_ns: None,
        }
    }

    /// Age out cache entries older than `max_age_ns` nanoseconds.
    pub fn with_max_age(mut self, max_age_ns: u64) -> Self {
        self.max_age_ns = Some(max_age_ns);
        self
    }
}

impl Strategy for TcpCache {
    fn name(&self) -> &'static str {
        "TCP-Cache"
    }

    fn on_established(&mut self, ops: &mut Ops<'_, '_>) {
        let entry = {
            let cache = self.cache.borrow();
            cache.get(&self.key).copied()
        };
        if let Some(e) = entry {
            let fresh = match self.max_age_ns {
                None => true,
                Some(age) => ops.now().as_nanos().saturating_sub(e.updated_at.as_nanos()) <= age,
            };
            if fresh {
                self.reno.set_cwnd(e.cwnd.min(ops.window_bytes() as u64));
                self.reno.set_ssthresh(e.ssthresh);
            }
        }
        self.reno.on_established(ops);
    }

    fn on_ack(&mut self, ops: &mut Ops<'_, '_>, _ack: &AckHeader, outcome: &AckOutcome) {
        self.reno.on_ack(ops, outcome);
    }

    fn on_loss_detected(&mut self, ops: &mut Ops<'_, '_>, newly_lost: &[SegId]) {
        self.reno.on_loss(ops, newly_lost);
    }

    fn on_rto(&mut self, ops: &mut Ops<'_, '_>) {
        self.reno.on_rto(ops);
    }

    fn on_complete(&mut self, ops: &mut Ops<'_, '_>) {
        self.cache.borrow_mut().insert(
            self.key,
            CacheEntry {
                cwnd: self.reno.cwnd(),
                ssthresh: self.reno.ssthresh(),
                updated_at: ops.now(),
            },
        );
    }

    fn save_state(&self, w: &mut netsim::snap::SnapWriter) {
        // The shared path cache is scenario state, checkpointed separately
        // via [`save_path_cache`]; only the per-flow engine lives here.
        self.reno.save(w);
        w.bool(self.max_age_ns.is_some());
        w.u64(self.max_age_ns.unwrap_or(0));
    }

    fn load_state(
        &mut self,
        r: &mut netsim::snap::SnapReader<'_>,
    ) -> Result<(), netsim::snap::SnapError> {
        self.reno = RenoEngine::load(r)?;
        let has_age = r.bool()?;
        let age = r.u64()?;
        self.max_age_ns = has_age.then_some(age);
        Ok(())
    }
}

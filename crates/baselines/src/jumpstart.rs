//! JumpStart (\[25\], §2.2): transmit the entire flow paced evenly across the
//! first RTT, then fall back to normal TCP with *bursty, reactive-only*
//! retransmission.
//!
//! The fallback keeps the huge effective window the paced batch implies, so
//! when SACK loss detection fires, every lost segment is retransmitted in
//! one line-rate burst — the behaviour the paper identifies as the cause of
//! JumpStart's early performance collapse (Figs. 10(b), 12) and poor
//! TCP-friendliness (Fig. 14). Tail loss still requires a full RTO, since
//! JumpStart has no proactive recovery.

use netsim::SimDuration;
use transport::reno::{RenoConfig, RenoEngine};
use transport::scoreboard::AckOutcome;
use transport::sender::Ops;
use transport::strategy::{PaceAction, Strategy};
use transport::wire::{segment_count, AckHeader, SegId, SendClass};

/// JumpStart: whole-flow pacing then bursty reactive TCP.
#[derive(Debug)]
pub struct JumpStart {
    reno: RenoEngine,
    pacing: bool,
    /// Segments to pace in the first batch (min(flow, window)).
    batch_segs: u32,
    /// Next batch segment to pace.
    next: SegId,
    /// Payload bytes paced in the batch (sets the fallback window).
    batch_bytes: u64,
}

impl JumpStart {
    /// A fresh JumpStart sender.
    pub fn new() -> Self {
        JumpStart {
            reno: RenoEngine::new(RenoConfig {
                icw_segments: 2,
                burst_retransmit: true,
                ..Default::default()
            }),
            pacing: false,
            batch_segs: 0,
            next: 0,
            batch_bytes: 0,
        }
    }

    fn finish_pacing(&mut self, ops: &mut Ops<'_, '_>) {
        self.pacing = false;
        // Fall back to TCP with the window the paced batch implies; the
        // first detected loss halves it, but until then JumpStart may burst.
        self.reno
            .set_cwnd(self.batch_bytes.max(2 * ops.mss() as u64));
        // Any loss already detected during pacing gets the bursty treatment
        // now (reactive-only: nothing was retransmitted while pacing).
        let pending: Vec<SegId> = ops.board().lost_segments(usize::MAX);
        if !pending.is_empty() {
            self.reno.on_loss(ops, &pending);
        }
    }
}

impl Default for JumpStart {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for JumpStart {
    fn name(&self) -> &'static str {
        "JumpStart"
    }

    fn on_established(&mut self, ops: &mut Ops<'_, '_>) {
        let window = ops.window_bytes() as u64;
        let batch_bytes = ops.flow_bytes().min(window);
        self.batch_segs = segment_count(batch_bytes).min(ops.total_segs());
        self.batch_bytes = batch_bytes;
        let rtt = ops.rtt().latest().unwrap_or(SimDuration::from_millis(100));
        // Pace the batch evenly across one RTT: first segment now, the rest
        // on ticks of rtt / n.
        let interval = rtt / self.batch_segs.max(1) as u64;
        self.pacing = true;
        ops.send_segment(0, SendClass::New);
        self.next = 1;
        if self.next >= self.batch_segs {
            self.finish_pacing(ops);
        } else {
            ops.start_pacing(interval);
        }
    }

    fn on_pace_tick(&mut self, ops: &mut Ops<'_, '_>) -> PaceAction {
        if !self.pacing || self.next >= self.batch_segs {
            return PaceAction::Stop;
        }
        ops.send_segment(self.next, SendClass::New);
        self.next += 1;
        if self.next >= self.batch_segs {
            self.finish_pacing(ops);
            PaceAction::Stop
        } else {
            PaceAction::Continue
        }
    }

    fn on_ack(&mut self, ops: &mut Ops<'_, '_>, _ack: &AckHeader, outcome: &AckOutcome) {
        if self.pacing {
            // Reactive-only: during the paced RTT, ACKs change nothing.
            return;
        }
        self.reno.on_ack(ops, outcome);
    }

    fn on_loss_detected(&mut self, ops: &mut Ops<'_, '_>, newly_lost: &[SegId]) {
        if self.pacing {
            // Noted on the scoreboard; handled when pacing completes.
            return;
        }
        self.reno.on_loss(ops, newly_lost);
    }

    fn on_rto(&mut self, ops: &mut Ops<'_, '_>) {
        if self.pacing {
            self.pacing = false;
            ops.stop_pacing();
        }
        self.reno.on_rto(ops);
    }

    fn naive_loss_remarking(&self) -> bool {
        // §4.3.3: JumpStart's "propensity to retransmit the same packets
        // multiple times".
        true
    }

    fn save_state(&self, w: &mut netsim::snap::SnapWriter) {
        self.reno.save(w);
        w.bool(self.pacing);
        w.u32(self.batch_segs);
        w.u32(self.next);
        w.u64(self.batch_bytes);
    }

    fn load_state(
        &mut self,
        r: &mut netsim::snap::SnapReader<'_>,
    ) -> Result<(), netsim::snap::SnapError> {
        self.reno = RenoEngine::load(r)?;
        self.pacing = r.bool()?;
        self.batch_segs = r.u32()?;
        self.next = r.u32()?;
        self.batch_bytes = r.u64()?;
        Ok(())
    }
}

//! Vanilla TCP and TCP-10: slow start from a 2- or 10-segment initial
//! window over the shared NewReno engine.
//!
//! The paper (§4.1) uses ICW = 2 for all TCP-family schemes except TCP-10,
//! noting that the 10-segment window of \[6, 15\] was not universally
//! deployed in 2015.

use transport::reno::{RenoConfig, RenoEngine};
use transport::scoreboard::AckOutcome;
use transport::sender::Ops;
use transport::strategy::Strategy;
use transport::wire::{AckHeader, SegId};

/// NewReno TCP with a configurable initial congestion window.
#[derive(Debug)]
pub struct Tcp {
    name: &'static str,
    reno: RenoEngine,
}

impl Tcp {
    /// Vanilla TCP: ICW = 2 segments.
    pub fn new() -> Self {
        Tcp {
            name: "TCP",
            reno: RenoEngine::new(RenoConfig {
                icw_segments: 2,
                ..Default::default()
            }),
        }
    }

    /// TCP-10: ICW = 10 segments (\[6, 15\]).
    pub fn with_icw10() -> Self {
        Tcp {
            name: "TCP-10",
            reno: RenoEngine::new(RenoConfig {
                icw_segments: 10,
                ..Default::default()
            }),
        }
    }

    /// TCP with an arbitrary initial window (used by ablations).
    pub fn with_icw(name: &'static str, icw_segments: u32) -> Self {
        Tcp {
            name,
            reno: RenoEngine::new(RenoConfig {
                icw_segments,
                ..Default::default()
            }),
        }
    }

    /// Access the congestion engine (tests).
    pub fn engine(&self) -> &RenoEngine {
        &self.reno
    }
}

impl Default for Tcp {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for Tcp {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_established(&mut self, ops: &mut Ops<'_, '_>) {
        self.reno.on_established(ops);
    }

    fn on_ack(&mut self, ops: &mut Ops<'_, '_>, _ack: &AckHeader, outcome: &AckOutcome) {
        self.reno.on_ack(ops, outcome);
    }

    fn on_loss_detected(&mut self, ops: &mut Ops<'_, '_>, newly_lost: &[SegId]) {
        self.reno.on_loss(ops, newly_lost);
    }

    fn on_rto(&mut self, ops: &mut Ops<'_, '_>) {
        self.reno.on_rto(ops);
    }

    fn save_state(&self, w: &mut netsim::snap::SnapWriter) {
        self.reno.save(w);
    }

    fn load_state(
        &mut self,
        r: &mut netsim::snap::SnapReader<'_>,
    ) -> Result<(), netsim::snap::SnapError> {
        self.reno = RenoEngine::load(r)?;
        Ok(())
    }
}

//! Proactive TCP (\[18\], as described in the paper §2.2/§4.1): transmit two
//! copies of every data segment. Both copies are charged against the
//! congestion window, which is why the scheme is *slower* than TCP in the
//! loss-free common case (it halves the effective window during slow start)
//! while avoiding timeouts under tail loss — matching the paper's PlanetLab
//! ordering (Fig. 6) and its early collapse under load (Fig. 12: ~45 %).

use transport::reno::{RenoConfig, RenoEngine};
use transport::scoreboard::AckOutcome;
use transport::sender::Ops;
use transport::strategy::Strategy;
use transport::wire::{AckHeader, SegId};

/// Proactive TCP: every new segment is sent twice.
#[derive(Debug)]
pub struct ProactiveTcp {
    reno: RenoEngine,
}

impl ProactiveTcp {
    /// Proactive TCP with the default 2-segment initial window.
    pub fn new() -> Self {
        ProactiveTcp {
            reno: RenoEngine::new(RenoConfig {
                icw_segments: 2,
                duplicate_new_segments: true,
                ..Default::default()
            }),
        }
    }
}

impl Default for ProactiveTcp {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for ProactiveTcp {
    fn name(&self) -> &'static str {
        "Proactive"
    }

    fn on_established(&mut self, ops: &mut Ops<'_, '_>) {
        self.reno.on_established(ops);
    }

    fn on_ack(&mut self, ops: &mut Ops<'_, '_>, _ack: &AckHeader, outcome: &AckOutcome) {
        self.reno.on_ack(ops, outcome);
    }

    fn on_loss_detected(&mut self, ops: &mut Ops<'_, '_>, newly_lost: &[SegId]) {
        self.reno.on_loss(ops, newly_lost);
    }

    fn on_rto(&mut self, ops: &mut Ops<'_, '_>) {
        self.reno.on_rto(ops);
    }

    fn save_state(&self, w: &mut netsim::snap::SnapWriter) {
        self.reno.save(w);
    }

    fn load_state(
        &mut self,
        r: &mut netsim::snap::SnapReader<'_>,
    ) -> Result<(), netsim::snap::SnapError> {
        self.reno = RenoEngine::load(r)?;
        Ok(())
    }
}

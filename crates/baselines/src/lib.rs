//! # baselines — the seven comparison schemes from the Halfback paper
//!
//! Each scheme is a [`transport::Strategy`] plugged into the shared sender
//! chassis, exactly mirroring the paper's methodology of sender-side-only
//! changes over a common UDT+SACK substrate (§4.1):
//!
//! | Scheme | Module | One-line description |
//! |---|---|---|
//! | TCP | [`tcp`] | NewReno, ICW = 2 |
//! | TCP-10 | [`tcp`] | NewReno, ICW = 10 (\[6, 15\]) |
//! | TCP-Cache | [`tcp_cache`] | per-path cwnd/ssthresh cache (\[28\]) |
//! | Reactive | [`reactive`] | tail loss probe / PTO (\[18\]) |
//! | Proactive | [`proactive`] | every segment sent twice (\[18\]) |
//! | JumpStart | [`jumpstart`] | whole flow paced in 1 RTT, bursty reactive retx (\[25\]) |
//! | PCP | [`pcp`] | packet-train probing, rate-paced transfer (\[7\]) |

#![warn(missing_docs)]

pub mod jumpstart;
pub mod pcp;
pub mod proactive;
pub mod reactive;
pub mod tcp;
pub mod tcp_cache;

pub use jumpstart::JumpStart;
pub use pcp::Pcp;
pub use proactive::ProactiveTcp;
pub use reactive::ReactiveTcp;
pub use tcp::Tcp;
pub use tcp_cache::{
    load_path_cache, path_cache, save_path_cache, CacheEntry, PathCache, TcpCache,
};

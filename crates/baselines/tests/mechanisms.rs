//! Direct mechanism tests for scheme-specific behaviours the paper calls
//! out: JumpStart's repeated retransmission of the same packet, Reactive's
//! tail-loss probe beating the RTO, Proactive's duplicate stream, and the
//! window advertisement scaling for bulk flows.

use baselines::{JumpStart, ProactiveTcp, ReactiveTcp, Tcp};
use netsim::loss::LossModel;
use netsim::topology::{build_path, PathSpec};
use netsim::{FlowId, Rate, SimDuration};
use transport::strategy::Strategy;
use transport::wire::MSS;
use transport::{FlowRecord, Host, TransportSim};

fn run_with_drops(
    strategy: Box<dyn Strategy>,
    bytes: u64,
    drops: Vec<u64>,
) -> (FlowRecord, u64 /* receiver dups */) {
    let mut spec = PathSpec::clean(Rate::from_mbps(100), SimDuration::from_millis(60));
    spec.loss = LossModel::DropList { ordinals: drops };
    let mut sim = TransportSim::new(31);
    let net = build_path(&mut sim, &spec, |_| Box::new(Host::new()));
    sim.with_node_mut::<Host, _>(net.sender, |h, _| h.wire(net.sender, net.forward));
    sim.with_node_mut::<Host, _>(net.receiver, |h, _| h.wire(net.receiver, net.reverse));
    sim.with_node_mut::<Host, _>(net.sender, |h, core| {
        h.start_flow(core, FlowId(1), net.receiver, bytes, strategy)
    });
    sim.run_to_completion(10_000_000);
    let rec = sim.node_as::<Host>(net.sender).unwrap().completed()[0].clone();
    let dups = sim
        .node_as::<Host>(net.receiver)
        .unwrap()
        .receiver(FlowId(1))
        .unwrap()
        .dup_segments;
    (rec, dups)
}

/// §4.3.3: JumpStart retransmits the same packet multiple times when its
/// first retransmission is lost too; careful TCP falls back to the RTO and
/// sends it once more only.
#[test]
fn jumpstart_retransmits_same_packet_repeatedly() {
    // 30 segments paced; drop segment 10's first copy (ordinal 12: SYN + 11
    // data) and ALSO its first retransmission.
    // With 30 paced packets, JumpStart's first retransmission of seg 10 is
    // packet ordinal 32 (31 data sends + SYN); drop that too.
    let drops = vec![12, 32];
    let (js, _) = run_with_drops(Box::new(JumpStart::new()), 30 * MSS as u64, drops.clone());
    let (tcp, _) = run_with_drops(Box::new(Tcp::new()), 30 * MSS as u64, drops);
    // JumpStart keeps re-marking the segment and re-sending: at least two
    // normal retransmissions beyond TCP's.
    assert!(
        js.counters.normal_retx >= 2,
        "JumpStart normal retx {}",
        js.counters.normal_retx
    );
    // TCP's second loss needs the RTO; both complete regardless.
    assert_eq!(js.bytes, tcp.bytes);
}

/// Reactive TCP's PTO converts a tail loss into fast recovery: much faster
/// than vanilla TCP's RTO, visible in FCT.
#[test]
fn reactive_pto_beats_rto_on_tail_loss() {
    // 10-segment flow; drop the last segment's first copy (ordinal 11).
    let drops = vec![11u64];
    let (rea, _) = run_with_drops(Box::new(ReactiveTcp::new()), 10 * MSS as u64, drops.clone());
    let (tcp, _) = run_with_drops(Box::new(Tcp::new()), 10 * MSS as u64, drops);
    assert!(
        tcp.counters.rto_events >= 1,
        "vanilla TCP must RTO on tail loss"
    );
    assert_eq!(rea.counters.rto_events, 0, "PTO must preempt the RTO");
    // The probe saves most of the 1 s minimum RTO.
    assert!(
        rea.fct.as_millis_f64() + 500.0 < tcp.fct.as_millis_f64(),
        "Reactive {} vs TCP {}",
        rea.fct,
        tcp.fct
    );
}

/// Proactive TCP's duplicates arrive as receiver-side duplicates in the
/// loss-free case — 100% overhead, exactly one extra copy per segment.
#[test]
fn proactive_duplicates_every_segment() {
    let n = 20u64;
    let (rec, dups) = run_with_drops(Box::new(ProactiveTcp::new()), n * MSS as u64, vec![]);
    assert_eq!(rec.counters.proactive_retx, n, "one duplicate per segment");
    assert_eq!(dups, n, "receiver sees each duplicate");
    // And a tail loss is masked by the duplicate: drop the last segment's
    // first copy; its twin repairs it without any timeout.
    let (lossy, _) = run_with_drops(
        Box::new(ProactiveTcp::new()),
        n * MSS as u64,
        vec![2 * n], // the (2n)th packet on the wire is within the tail pair
    );
    assert_eq!(lossy.counters.rto_events, 0, "duplicate must mask the loss");
}

/// Receiver window: short flows get the paper's 141 KB advertisement; bulk
/// flows get a scaled window so they can fill big buffers (Fig. 10).
#[test]
fn receiver_window_scales_for_bulk_flows() {
    use transport::receiver::ReceiverConn;
    use transport::wire::DEFAULT_FCW_BYTES;
    let short = ReceiverConn::new(
        FlowId(1),
        netsim::NodeId(0),
        netsim::NodeId(1),
        100_000,
        netsim::SimTime::ZERO,
    );
    let bulk = ReceiverConn::new(
        FlowId(2),
        netsim::NodeId(0),
        netsim::NodeId(1),
        100_000_000,
        netsim::SimTime::ZERO,
    );
    let win = |c: &ReceiverConn| match c.syn_ack().payload {
        transport::Header::SynAck { window } => window,
        _ => unreachable!(),
    };
    assert_eq!(win(&short), DEFAULT_FCW_BYTES);
    assert_eq!(win(&bulk), ReceiverConn::BULK_FCW_BYTES);
}

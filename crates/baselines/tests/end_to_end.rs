//! End-to-end behaviour of the baseline schemes over the paper's Emulab
//! dumbbell (Fig. 4): a single flow must complete, and the schemes must
//! order the way the paper's low-utilization results do.

use baselines::{path_cache, JumpStart, Pcp, ProactiveTcp, ReactiveTcp, Tcp, TcpCache};
use netsim::topology::{build_dumbbell, DumbbellSpec};
use netsim::{FlowId, SimTime};
use transport::sender::FlowRecord;
use transport::strategy::Strategy;
use transport::{Host, TransportSim};

/// Build a 1-pair Emulab dumbbell, run one `bytes`-sized flow with the
/// given strategy, and return its record.
fn run_single(strategy: Box<dyn Strategy>, bytes: u64) -> FlowRecord {
    run_single_seeded(strategy, bytes, 1)
}

fn run_single_seeded(strategy: Box<dyn Strategy>, bytes: u64, seed: u64) -> FlowRecord {
    let mut sim = TransportSim::new(seed);
    let spec = DumbbellSpec::emulab(1);
    let net = build_dumbbell(&mut sim, &spec, |_, _| Box::new(Host::new()));
    sim.with_node_mut::<Host, _>(net.left_hosts[0], |h, _| {
        h.wire(net.left_hosts[0], net.left_egress[0])
    });
    sim.with_node_mut::<Host, _>(net.right_hosts[0], |h, _| {
        h.wire(net.right_hosts[0], net.right_egress[0])
    });
    sim.with_node_mut::<Host, _>(net.left_hosts[0], |h, core| {
        h.start_flow(core, FlowId(1), net.right_hosts[0], bytes, strategy)
    });
    sim.run_to_completion(50_000_000);
    let host = sim.node_as::<Host>(net.left_hosts[0]).unwrap();
    assert_eq!(host.completed().len(), 1, "flow did not complete");
    host.completed()[0].clone()
}

#[test]
fn tcp_completes_100kb_in_slow_start_time() {
    let r = run_single(Box::new(Tcp::new()), 100_000);
    let fct = r.fct.as_millis_f64();
    // Handshake (~60 ms) + ~6 slow-start rounds (2,4,8,16,32,7 segs).
    assert!(fct > 350.0 && fct < 550.0, "TCP FCT {fct}ms");
    assert_eq!(r.counters.normal_retx, 0, "clean path must not retransmit");
    assert_eq!(r.counters.rto_events, 0);
}

#[test]
fn tcp10_is_faster_than_tcp() {
    let tcp = run_single(Box::new(Tcp::new()), 100_000);
    let tcp10 = run_single(Box::new(Tcp::with_icw10()), 100_000);
    // ICW=10 skips ~2.3 doubling rounds.
    assert!(
        tcp10.fct < tcp.fct,
        "TCP-10 ({}) must beat TCP ({})",
        tcp10.fct,
        tcp.fct
    );
    let saved_ms = tcp.fct.as_millis_f64() - tcp10.fct.as_millis_f64();
    assert!(
        saved_ms > 80.0,
        "TCP-10 should save >1 RTT, saved {saved_ms}ms"
    );
}

#[test]
fn jumpstart_finishes_in_about_three_rtts() {
    let r = run_single(Box::new(JumpStart::new()), 100_000);
    let fct = r.fct.as_millis_f64();
    // Handshake + 1 paced RTT + last ACK: ~2.5-3 RTT = 150-190 ms.
    assert!(fct > 140.0 && fct < 230.0, "JumpStart FCT {fct}ms");
    assert_eq!(
        r.counters.normal_retx, 0,
        "no loss alone on a clean dumbbell"
    );
}

#[test]
fn jumpstart_beats_every_tcp_variant_at_low_load() {
    let js = run_single(Box::new(JumpStart::new()), 100_000);
    let tcp10 = run_single(Box::new(Tcp::with_icw10()), 100_000);
    assert!(
        js.fct < tcp10.fct,
        "JumpStart {} vs TCP-10 {}",
        js.fct,
        tcp10.fct
    );
}

#[test]
fn proactive_is_slower_than_tcp_without_loss() {
    // The paper's PlanetLab results (Fig. 6) put Proactive *behind* TCP in
    // the loss-free common case: duplicates consume the window.
    let tcp = run_single(Box::new(Tcp::new()), 100_000);
    let pro = run_single(Box::new(ProactiveTcp::new()), 100_000);
    assert!(
        pro.fct > tcp.fct,
        "Proactive {} must be slower than TCP {}",
        pro.fct,
        tcp.fct
    );
    let r = pro;
    assert!(
        r.counters.proactive_retx > 0,
        "Proactive must send duplicates"
    );
    assert_eq!(r.counters.normal_retx, 0);
}

#[test]
fn reactive_matches_tcp_without_loss() {
    let tcp = run_single(Box::new(Tcp::new()), 100_000);
    let rea = run_single(Box::new(ReactiveTcp::new()), 100_000);
    let diff = (rea.fct.as_millis_f64() - tcp.fct.as_millis_f64()).abs();
    assert!(
        diff < 30.0,
        "Reactive should track TCP without loss; diff {diff}ms"
    );
}

#[test]
fn pcp_probes_before_sending_and_is_slow() {
    let r = run_single(Box::new(Pcp::new()), 100_000);
    assert!(
        r.counters.probes_sent >= 10,
        "PCP must probe (sent {})",
        r.counters.probes_sent
    );
    let fct = r.fct.as_millis_f64();
    // Several probe rounds at ~1 RTT each push PCP past JumpStart.
    assert!(fct > 300.0, "PCP FCT {fct}ms unexpectedly fast");
    assert!(fct < 2_000.0, "PCP FCT {fct}ms unexpectedly slow");
    assert_eq!(
        r.counters.rto_events, 0,
        "PCP should not time out on a clean path"
    );
}

#[test]
fn tcp_cache_second_flow_is_much_faster() {
    let cache = path_cache();
    let mut sim = TransportSim::new(7);
    let spec = DumbbellSpec::emulab(1);
    let net = build_dumbbell(&mut sim, &spec, |_, _| Box::new(Host::new()));
    sim.with_node_mut::<Host, _>(net.left_hosts[0], |h, _| {
        h.wire(net.left_hosts[0], net.left_egress[0])
    });
    sim.with_node_mut::<Host, _>(net.right_hosts[0], |h, _| {
        h.wire(net.right_hosts[0], net.right_egress[0])
    });
    let key = (net.left_hosts[0], net.right_hosts[0]);
    sim.with_node_mut::<Host, _>(net.left_hosts[0], |h, core| {
        h.start_flow(
            core,
            FlowId(1),
            net.right_hosts[0],
            100_000,
            Box::new(TcpCache::new(cache.clone(), key)),
        )
    });
    sim.run_to_completion(50_000_000);
    // Second flow reuses the cached window.
    sim.with_node_mut::<Host, _>(net.left_hosts[0], |h, core| {
        h.start_flow(
            core,
            FlowId(2),
            net.right_hosts[0],
            100_000,
            Box::new(TcpCache::new(cache.clone(), key)),
        )
    });
    sim.run_to_completion(50_000_000);
    let host = sim.node_as::<Host>(net.left_hosts[0]).unwrap();
    assert_eq!(host.completed().len(), 2);
    let first = &host.completed()[0];
    let second = &host.completed()[1];
    let f1 = first.fct.as_millis_f64();
    let f2 = second.fct.as_millis_f64();
    assert!(
        f2 < f1 * 0.6,
        "cached flow {f2}ms should be far faster than cold {f1}ms"
    );
    assert!(
        f2 < 250.0,
        "cached flow should approach the 2-3 RTT floor, got {f2}ms"
    );
}

#[test]
fn single_segment_flow_completes_quickly_for_all() {
    for (name, s) in strategies() {
        let r = run_single(s, 1000);
        let fct = r.fct.as_millis_f64();
        assert!(
            fct > 110.0 && fct < 600.0,
            "{name}: 1-segment flow FCT {fct}ms out of range"
        );
    }
}

#[test]
fn megabyte_flow_completes_for_all() {
    for (name, s) in strategies() {
        let r = run_single(s, 1_000_000);
        assert_eq!(r.bytes, 1_000_000, "{name}");
        // 1 MB at 15 Mbps is >= 533 ms of pure serialization.
        assert!(r.fct.as_millis_f64() > 500.0, "{name}: impossibly fast");
    }
}

#[test]
fn deterministic_across_runs() {
    for (name, make) in [
        (
            "TCP",
            (|| Box::new(Tcp::new()) as Box<dyn Strategy>) as fn() -> Box<dyn Strategy>,
        ),
        ("JumpStart", || {
            Box::new(JumpStart::new()) as Box<dyn Strategy>
        }),
        ("PCP", || Box::new(Pcp::new()) as Box<dyn Strategy>),
    ] {
        let a = run_single_seeded(make(), 100_000, 5);
        let b = run_single_seeded(make(), 100_000, 5);
        assert_eq!(a.fct, b.fct, "{name} must be deterministic");
        assert_eq!(
            a.counters.data_packets_sent, b.counters.data_packets_sent,
            "{name}"
        );
    }
}

#[test]
fn flow_records_account_time_sanely() {
    let r = run_single(Box::new(Tcp::new()), 100_000);
    assert!(r.established_at > r.start);
    assert!(r.done_at > r.established_at);
    assert_eq!(r.fct, r.done_at.saturating_since(r.start));
    assert!(r.start >= SimTime::ZERO);
    // Handshake costs about one RTT.
    let hs = r.established_at.saturating_since(r.start).as_millis_f64();
    assert!(hs > 59.0 && hs < 62.0, "handshake {hs}ms");
    let min_rtt = r.min_rtt.expect("rtt sampled").as_millis_f64();
    assert!(min_rtt > 59.0 && min_rtt < 65.0, "min rtt {min_rtt}ms");
}

fn strategies() -> Vec<(&'static str, Box<dyn Strategy>)> {
    vec![
        ("TCP", Box::new(Tcp::new())),
        ("TCP-10", Box::new(Tcp::with_icw10())),
        ("Reactive", Box::new(ReactiveTcp::new())),
        ("Proactive", Box::new(ProactiveTcp::new())),
        ("JumpStart", Box::new(JumpStart::new())),
        ("PCP", Box::new(Pcp::new())),
    ]
}

#!/usr/bin/env sh
# Shard-determinism smoke: the sharded engine's whole contract is that
# `--shards N` changes wall-clock time and nothing else. Run the scaled
# PlanetLab scenario at quick scale on 1 and 4 shard workers and require
# the output directories to be byte-identical. Any divergence — event
# reordering at a window boundary, an RNG substream crossing partitions,
# a float reduction picking up thread order — shows up here as a diff.
#
# Usage: ci/check_shards.sh  (from the repo root)
set -eu

out1=$(mktemp -d)
out4=$(mktemp -d)
trap 'rm -rf "$out1" "$out4"' EXIT

cargo run --release --bin repro -- planetlab100k --scale quick --shards 1 --out "$out1"
cargo run --release --bin repro -- planetlab100k --scale quick --shards 4 --out "$out4"

# The run manifest carries wall-clock and machine-shape fields by design;
# compare it separately with those lines stripped (each sits on its own
# line — see crates/scenarios/src/manifest.rs).
if ! diff -r -x manifest.json "$out1" "$out4"; then
    echo "FAIL: planetlab100k output differs between --shards 1 and --shards 4" >&2
    exit 1
fi

grep -vE '"wall_|"machine"' "$out1/manifest.json" > "$out1/manifest.det"
grep -vE '"wall_|"machine"' "$out4/manifest.json" > "$out4/manifest.det"
if ! diff "$out1/manifest.det" "$out4/manifest.det"; then
    echo "FAIL: manifest deterministic fields differ between --shards 1 and --shards 4" >&2
    exit 1
fi

echo "OK: planetlab100k output is byte-identical across shard counts"

#!/usr/bin/env sh
# Weather-service smoke: run the open-loop "internet weather" mode for 10
# simulated minutes, then enforce the three contracts the mode ships with
# (see crates/scenarios/src/weather.rs and DESIGN.md "Open-loop service
# mode"):
#
#   1. Output shape — windows.csv carries the halfback-weather-v1 header
#      and one well-formed row per window; weather.json parses and the
#      run sustained a service-scale arrival rate (>= 1M flows per
#      simulated hour at default utilization) with every flow accounted
#      for (started = completed + aborted + censored).
#   2. Bounded memory — the run's RSS (reported in weather.json's
#      quarantined "machine" line) stays under a generous ceiling, and
#      receivers were actually reaped; an unbounded per-flow structure
#      shows up here long before the 24 h run OOMs.
#   3. Kill/restore byte-identity — a second run killed at its first
#      checkpoint and resumed must reproduce windows.csv, weather.json
#      (minus the machine line), and the final checkpoint byte-for-byte.
#
# Usage: ci/check_weather.sh  (from the repo root)
set -eu

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

run="cargo run --release --bin repro -- weather --minutes 10 --checkpoint-every 3"

# --- 1. Uninterrupted reference run -----------------------------------
$run --out "$dir/a"

head -1 "$dir/a/windows.csv" | grep -q \
    '^window,t_end_s,started,completed,aborted,fct_ms_mean,fct_ms_p50,fct_ms_p99,retx_mean,active_flows,live_receivers,reaped$' || {
    echo "FAIL: windows.csv header is not halfback-weather-v1" >&2
    exit 1
}
rows=$(tail -n +2 "$dir/a/windows.csv" | wc -l)
if [ "$rows" != "10" ]; then
    echo "FAIL: expected 10 window rows for 10 minutes of 60s windows, got $rows" >&2
    exit 1
fi
bad=$(tail -n +2 "$dir/a/windows.csv" | grep -cv \
    '^[0-9]*,[0-9.]*,[0-9]*,[0-9]*,[0-9]*,[0-9.]*,[0-9.]*,[0-9.]*,[0-9.]*,[0-9]*,[0-9]*,[0-9]*$' || true)
if [ "$bad" != "0" ]; then
    echo "FAIL: $bad malformed windows.csv rows" >&2
    exit 1
fi

grep -q '"schema": "halfback-weather-v1"' "$dir/a/weather.json" || {
    echo "FAIL: weather.json missing schema tag" >&2
    exit 1
}
field() { grep "\"$2\":" "$1" | head -1 | tr -dc '0-9.'; }
fph=$(field "$dir/a/weather.json" flows_per_hour | cut -d. -f1)
if [ "$fph" -lt 1000000 ]; then
    echo "FAIL: sustained only $fph flows/simulated-hour (service target: 1M+)" >&2
    exit 1
fi
started=$(field "$dir/a/weather.json" flows_started)
completed=$(field "$dir/a/weather.json" flows_completed)
aborted=$(field "$dir/a/weather.json" flows_aborted)
censored=$(field "$dir/a/weather.json" flows_censored)
if [ "$started" != "$((completed + aborted + censored))" ]; then
    echo "FAIL: flow accounting broken: $started != $completed + $aborted + $censored" >&2
    exit 1
fi

# --- 2. Bounded memory ------------------------------------------------
rss=$(field "$dir/a/weather.json" rss_mb)
if [ "$rss" -gt 512 ]; then
    echo "FAIL: weather run used ${rss} MB RSS (bound: 512 MB)" >&2
    exit 1
fi
reaped=$(field "$dir/a/weather.json" receivers_reaped)
if [ "$reaped" -le 0 ]; then
    echo "FAIL: no receivers reaped in 10 simulated minutes" >&2
    exit 1
fi

# --- 3. Kill at first checkpoint, resume, compare ---------------------
$run --out "$dir/b" --stop-after-checkpoints 1
$run --out "$dir/b" --resume

if ! cmp -s "$dir/a/windows.csv" "$dir/b/windows.csv"; then
    echo "FAIL: windows.csv differs between uninterrupted and kill+resume runs" >&2
    diff "$dir/a/windows.csv" "$dir/b/windows.csv" >&2 || true
    exit 1
fi
grep -v '"machine"' "$dir/a/weather.json" > "$dir/a.json.det"
grep -v '"machine"' "$dir/b/weather.json" > "$dir/b.json.det"
if ! diff "$dir/a.json.det" "$dir/b.json.det"; then
    echo "FAIL: weather.json differs between uninterrupted and kill+resume runs" >&2
    exit 1
fi
if ! cmp -s "$dir/a/weather.ckpt" "$dir/b/weather.ckpt"; then
    echo "FAIL: final checkpoints differ between uninterrupted and kill+resume runs" >&2
    exit 1
fi

echo "OK: $started flows ($fph/simulated-hour, ${rss} MB RSS), kill+resume byte-identical"

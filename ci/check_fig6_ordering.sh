#!/usr/bin/env sh
# Assert the paper's headline mean-FCT ordering in a fig6 summary:
#   Halfback < JumpStart < TCP
# Usage: check_fig6_ordering.sh path/to/fig6.summary.txt
set -eu

summary=${1:?usage: check_fig6_ordering.sh fig6.summary.txt}

mean_fct() {
    # Lines look like: "Halfback: mean FCT 346 ms, 99th pct 1195 ms"
    sed -n "s/^$1: mean FCT \([0-9][0-9]*\) ms.*/\1/p" "$summary"
}

hb=$(mean_fct Halfback)
js=$(mean_fct JumpStart)
tcp=$(mean_fct TCP)

for v in hb js tcp; do
    eval "val=\$$v"
    if [ -z "$val" ]; then
        echo "FAIL: no mean-FCT line for $v in $summary" >&2
        cat "$summary" >&2
        exit 1
    fi
done

echo "mean FCT: Halfback=${hb}ms JumpStart=${js}ms TCP=${tcp}ms"
if [ "$hb" -lt "$js" ] && [ "$js" -lt "$tcp" ]; then
    echo "OK: Halfback < JumpStart < TCP"
else
    echo "FAIL: expected Halfback < JumpStart < TCP" >&2
    exit 1
fi

#!/usr/bin/env sh
# Telemetry-determinism smoke: `--telemetry` emits one JSONL record per
# (conservative window, partition). The virtual-time fields are part of
# the sharded engine's determinism contract — byte-identical across
# `--shards N` — while wall-clock measurements live in a nested
# `"wall":{...}` object precisely so this check can strip them with one
# sed expression (see crates/scenarios/src/telemetry.rs).
#
# Usage: ci/check_telemetry.sh  (from the repo root)
set -eu

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

cargo run --release --bin repro -- planetlab100k --scale quick \
    --shards 1 --telemetry "$dir/t1.jsonl" --out "$dir/out1"
cargo run --release --bin repro -- planetlab100k --scale quick \
    --shards 4 --telemetry "$dir/t4.jsonl" --out "$dir/out4"

# Shape: a schema-tagged header, then only window records.
for f in "$dir/t1.jsonl" "$dir/t4.jsonl"; do
    head -1 "$f" | grep -q '"schema":"halfback-telemetry-v1"' || {
        echo "FAIL: $f missing schema header" >&2
        exit 1
    }
    body=$(tail -n +2 "$f" | grep -cv '^{"kind":"window",' || true)
    if [ "$body" != "0" ]; then
        echo "FAIL: $f has $body non-window body lines" >&2
        exit 1
    fi
    # Every record carries the full field set, wall object last.
    bad=$(tail -n +2 "$f" | grep -cv \
        '"window":.*"part":.*"w_end_ns":.*"events":.*"deposited":.*"injected":.*"mailbox_max":.*"wheel_depth":.*"arena_live":.*"arena_hiwater":.*"wall":{"barrier_ns":[0-9]*,"window_ns":[0-9]*}}$' || true)
    if [ "$bad" != "0" ]; then
        echo "FAIL: $f has $bad records missing fields" >&2
        exit 1
    fi
done

# Determinism: identical after stripping the quarantined wall object.
sed 's/,"wall":{[^}]*}//' "$dir/t1.jsonl" > "$dir/t1.det"
sed 's/,"wall":{[^}]*}//' "$dir/t4.jsonl" > "$dir/t4.det"
if ! diff "$dir/t1.det" "$dir/t4.det"; then
    echo "FAIL: telemetry virtual-time fields differ between --shards 1 and --shards 4" >&2
    exit 1
fi

records=$(tail -n +2 "$dir/t1.jsonl" | wc -l)
echo "OK: $records telemetry records, virtual-time fields byte-identical across shard counts"

#!/usr/bin/env sh
# Assert a simcheck battery came back clean: every randomized case upheld
# the full oracle set (conservation, ACK monotonicity, terminal flows,
# clean drain, FCT lower bound, RTO sanity, Halfback-vs-TCP differential)
# and no case tripped the per-job watchdog.
# Usage: check_simcheck.sh path/to/simcheck.summary.txt
set -eu

summary=${1:?usage: check_simcheck.sh simcheck.summary.txt}

grep_count() {
    # Lines look like: "invariant violations: 0" / "watchdog trips: 0"
    sed -n "s/^$1: \([0-9][0-9]*\)$/\1/p" "$summary"
}

violations=$(grep_count "invariant violations")
trips=$(grep_count "watchdog trips")

for name in violations trips; do
    eval "val=\$$name"
    if [ -z "$val" ]; then
        echo "FAIL: no '$name' totals line in $summary" >&2
        cat "$summary" >&2
        exit 1
    fi
done

# A failing case prints "case N: FAILED [oracle] …" plus its shrunk repro
# command; surface those lines directly in the CI log.
if grep -q "FAILED" "$summary"; then
    echo "FAIL: simcheck found failing cases" >&2
    grep -A 1 "FAILED" "$summary" >&2
    exit 1
fi

echo "simcheck: invariant violations=$violations watchdog trips=$trips"
if [ "$violations" -eq 0 ] && [ "$trips" -eq 0 ]; then
    echo "OK: every randomized case upheld every oracle"
else
    echo "FAIL: expected zero invariant violations and watchdog trips" >&2
    exit 1
fi

#!/usr/bin/env sh
# Baseline freshness: every benchmark a bench binary registers must have
# an entry in its committed BENCH_*.json, and each file must parse as
# halfback-bench-v1. Without this, adding a benchmark without
# re-baselining leaves it permanently outside the perf gate — the
# --check filters in ci/check_bench.sh only guard benches the baseline
# knows about.
#
# Uses the harness's --baseline-covers mode: it registers every bench
# (no timing runs, so this job is build-bound, not bench-bound),
# validates the baseline schema, and exits 1 listing any bench missing
# from the file. Stale baseline entries whose bench no longer exists
# are a warning, not a failure: deleting a bench should not require a
# lockstep baseline edit to keep CI green.
#
# Usage: ci/check_bench_coverage.sh  (from the repo root)
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)

cargo bench --bench engine -- --baseline-covers "$root/BENCH_netsim.json"
cargo bench --bench e2e -- --baseline-covers "$root/BENCH_e2e.json"
cargo bench --bench figures -- --baseline-covers "$root/BENCH_figures.json"

echo "OK: every registered benchmark has a committed baseline entry"

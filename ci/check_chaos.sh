#!/usr/bin/env sh
# Assert a chaos run survived cleanly: every cell upheld the fault-
# injection invariants (all flows terminal, packet conservation, clean
# drain) and no cell hit the per-job watchdog.
# Usage: check_chaos.sh path/to/chaos.summary.txt
set -eu

summary=${1:?usage: check_chaos.sh chaos.summary.txt}

grep_count() {
    # Lines look like: "invariant violations: 0" / "watchdog trips: 0"
    sed -n "s/^$1: \([0-9][0-9]*\)$/\1/p" "$summary"
}

violations=$(grep_count "invariant violations")
trips=$(grep_count "watchdog trips")

for name in violations trips; do
    eval "val=\$$name"
    if [ -z "$val" ]; then
        echo "FAIL: no '$name' totals line in $summary" >&2
        cat "$summary" >&2
        exit 1
    fi
done

# Every cell must have produced a real row: no FAILED entries either.
if grep -q "FAILED" "$summary"; then
    echo "FAIL: chaos summary contains FAILED cells" >&2
    grep "FAILED" "$summary" >&2
    exit 1
fi

echo "chaos: invariant violations=$violations watchdog trips=$trips"
if [ "$violations" -eq 0 ] && [ "$trips" -eq 0 ]; then
    echo "OK: all cells survived with invariants intact"
else
    echo "FAIL: expected zero invariant violations and watchdog trips" >&2
    exit 1
fi

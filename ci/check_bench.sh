#!/usr/bin/env sh
# Perf smoke: run the engine and end-to-end benchmarks and compare each
# median against the committed baselines (BENCH_netsim.json /
# BENCH_e2e.json at the repo root). The bench harness's --check mode
# fails (exit 1) if any benchmark is more than 1.3x slower than its
# baseline median. The harness takes the minimum of per-block medians
# across the sample stream (see crates/bench, "Noise handling"), which
# absorbs shared-runner noise bursts well enough that 1.3x holds the
# line where the old plain-median gate needed 2x headroom — tight
# enough to catch a reintroduced per-packet allocation, not just an
# O(n log n) -> O(n^2) blowup.
#
# The harness also exits nonzero if a filter below matches no
# benchmark, so a renamed bench fails this script instead of silently
# shrinking perf coverage.
#
# Usage: ci/check_bench.sh  (from the repo root)
#
# Refresh the baselines after an intentional perf change with:
#   cargo bench --bench engine -- --json /tmp/engine.json
#   cargo bench --bench e2e   --  --json /tmp/e2e.json
# and fold the new numbers into the committed files' "after" section
# (see EXPERIMENTS.md, "Performance baselines").
set -eu

# Cargo runs bench binaries with the package directory as cwd, so the
# baseline paths must be absolute.
root=$(cd "$(dirname "$0")/.." && pwd)

# The 1e7-event macro bench takes ~2 s per sample; CI only needs the
# smaller points to detect a complexity regression, so filter to the
# sub-second benches. link_pipeline guards the flight-recorder contract:
# with no tracer installed the packet hot path must stay as fast as the
# committed baseline (tracing is a branch on a cold Option, nothing
# more). far_schedule exercises the L2 wheel + overflow heap path;
# packet_arena pins the pooled-packet alloc/free cycle. shard_barrier
# pins the sharded engine's per-window coordination cost (barriers +
# mailbox sweeps) with one hop of real work per window — both with the
# per-window telemetry records off (the free default) and on.
# quantile_sketch pins the log-histogram insert/merge path the large
# scenarios aggregate FCTs through.
cargo bench --bench engine -- \
    schedule_fire_1e5 schedule_cancel_fire_1e6 event_queue_hold \
    far_schedule_fire_1e6 packet_arena \
    link_pipeline shard_barrier quantile_sketch \
    --check "$root/BENCH_netsim.json"

cargo bench --bench e2e -- --check "$root/BENCH_e2e.json"

echo "OK: benchmark medians within 1.3x of committed baselines"

#!/usr/bin/env sh
# Perf smoke: run the engine and end-to-end benchmarks and compare each
# median against the committed baselines (BENCH_netsim.json /
# BENCH_e2e.json at the repo root). The bench harness's --check mode
# fails (exit 1) if any benchmark is more than 2x slower than its
# baseline median — loose enough for shared-runner noise, tight enough
# to catch an accidental O(n log n) -> O(n^2) in the event queue or a
# reintroduced per-packet allocation.
#
# Usage: ci/check_bench.sh  (from the repo root)
#
# Refresh the baselines after an intentional perf change with:
#   cargo bench --bench engine -- event_queue --json /tmp/engine.json
#   cargo bench --bench e2e   --            --json /tmp/e2e.json
# and fold the new numbers into the committed files' "after" section
# (see EXPERIMENTS.md, "Performance baselines").
set -eu

# Cargo runs bench binaries with the package directory as cwd, so the
# baseline paths must be absolute.
root=$(cd "$(dirname "$0")/.." && pwd)

# The 1e7-event macro bench takes ~30 s per sample; CI only needs the
# smaller points to detect a complexity regression, so filter to the
# sub-second benches. link_pipeline guards the flight-recorder contract:
# with no tracer installed the packet hot path must stay as fast as the
# committed baseline (tracing is a branch on a cold Option, nothing more).
cargo bench --bench engine -- \
    schedule_fire_1e5 schedule_cancel_fire_1e6 event_queue_hold \
    link_pipeline \
    --check "$root/BENCH_netsim.json"

cargo bench --bench e2e -- --check "$root/BENCH_e2e.json"

echo "OK: benchmark medians within 2x of committed baselines"

#!/usr/bin/env sh
# Assert a `repro trace` export is sane: the JSONL is one flat object per
# line, the meet-point summary line is present with a fraction inside the
# paper's "Halfback stops about halfway back" band [0.4, 0.6], and the
# time-sequence CSV has the repo's series,x,y header with data rows.
# Usage: check_trace.sh path/to/trace.jsonl path/to/trace_timeseq.csv
set -eu

jsonl=${1:?usage: check_trace.sh trace.jsonl trace_timeseq.csv}
csv=${2:?usage: check_trace.sh trace.jsonl trace_timeseq.csv}

# Every line is a flat JSON object (the exporter writes no nesting).
bad=$(awk '!/^\{.*\}$/ { n++ } END { print n+0 }' "$jsonl")
if [ "$bad" -ne 0 ]; then
    echo "FAIL: $bad non-JSONL lines in $jsonl" >&2
    exit 1
fi

lines=$(wc -l < "$jsonl")
if [ "$lines" -lt 100 ]; then
    echo "FAIL: only $lines trace lines in $jsonl (expected a real flow)" >&2
    exit 1
fi

# Exactly one meet-point summary line, with fraction in [0.4, 0.6].
meets=$(grep -c '"event":"meet_point"' "$jsonl" || true)
if [ "$meets" -ne 1 ]; then
    echo "FAIL: expected exactly one meet_point line, found $meets" >&2
    exit 1
fi
fraction=$(sed -n 's/.*"fraction":\([0-9.][0-9.]*\).*/\1/p' "$jsonl")
if [ -z "$fraction" ]; then
    echo "FAIL: meet_point line has no fraction (ROPR never met the ACKs?)" >&2
    grep '"event":"meet_point"' "$jsonl" >&2
    exit 1
fi
ok=$(awk -v f="$fraction" 'BEGIN { print (f >= 0.4 && f <= 0.6) ? 1 : 0 }')
if [ "$ok" -ne 1 ]; then
    echo "FAIL: meet fraction $fraction outside [0.4, 0.6] (paper: ~50%)" >&2
    exit 1
fi

# Time-sequence CSV: header plus transmissions, ACKs, and deliveries.
head -n 1 "$csv" | grep -q '^series,x,y$' || {
    echo "FAIL: $csv missing series,x,y header" >&2
    exit 1
}
for series in data ack delivered; do
    grep -q "^$series," "$csv" || {
        echo "FAIL: $csv has no '$series' rows" >&2
        exit 1
    }
done

echo "trace: $lines JSONL lines, meet fraction $fraction"
echo "OK: deterministic trace export is well-formed and meets near 50%"
